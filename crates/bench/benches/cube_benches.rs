//! Criterion micro-benchmarks for the ranking-cube core: cube
//! construction, grid-cube queries, signature-cube queries, signature
//! coding and incremental maintenance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcube_baseline::{BooleanFirst, RankMapping, TableScan};
use rcube_core::fragments::{FragmentConfig, RankingFragments};
use rcube_core::gridcube::{GridCubeConfig, GridRankingCube};
use rcube_core::sigcube::{SignatureCube, SignatureCubeConfig};
use rcube_core::sigquery::topk_signature;
use rcube_core::TopKQuery;
use rcube_func::Linear;
use rcube_index::rtree::{RTree, RTreeConfig};
use rcube_storage::DiskSim;
use rcube_table::gen::SyntheticSpec;
use rcube_table::Selection;

const T: usize = 20_000;

fn bench_construction(c: &mut Criterion) {
    let rel = SyntheticSpec { tuples: T, ..Default::default() }.generate();
    let mut g = c.benchmark_group("construction");
    g.sample_size(10);
    g.bench_function("grid_cube_build", |b| {
        b.iter(|| {
            let disk = DiskSim::with_defaults();
            GridRankingCube::build(&rel, &disk, GridCubeConfig::default())
        })
    });
    g.bench_function("signature_cube_build", |b| {
        let disk = DiskSim::with_defaults();
        let rtree = RTree::over_relation(&disk, &rel, &[], RTreeConfig::for_page(4096, 2));
        b.iter(|| SignatureCube::build(&rel, &rtree, &disk, SignatureCubeConfig::default()))
    });
    g.finish();
}

fn bench_topk_query(c: &mut Criterion) {
    let rel = SyntheticSpec { tuples: T, ..Default::default() }.generate();
    let disk = DiskSim::with_defaults();
    let cube = GridRankingCube::build(&rel, &disk, GridCubeConfig::default());
    let rtree = RTree::over_relation(&disk, &rel, &[], RTreeConfig::for_page(4096, 2));
    let sig = SignatureCube::build(&rel, &rtree, &disk, SignatureCubeConfig::default());
    let scan = TableScan::new(&rel, &disk);
    let bf = BooleanFirst::build(&rel, &disk);
    let rm = RankMapping::build(&rel, &disk);
    let sel = Selection::new(vec![(0, 1), (1, 2)]);
    let f = Linear::new(vec![1.0, 2.0]);

    let mut g = c.benchmark_group("topk_query");
    for k in [10usize, 100] {
        g.bench_with_input(BenchmarkId::new("grid_cube", k), &k, |b, &k| {
            let q = TopKQuery::new(sel.conds().to_vec(), f.clone(), k);
            b.iter(|| cube.query(&q, &disk))
        });
        g.bench_with_input(BenchmarkId::new("signature_cube", k), &k, |b, &k| {
            let q = TopKQuery::new(sel.conds().to_vec(), f.clone(), k);
            b.iter(|| topk_signature(&rtree, &sig, &q, &disk))
        });
        g.bench_with_input(BenchmarkId::new("table_scan", k), &k, |b, &k| {
            b.iter(|| scan.topk(&rel, &disk, &sel, &f, &[0, 1], k))
        });
        g.bench_with_input(BenchmarkId::new("boolean_first", k), &k, |b, &k| {
            b.iter(|| bf.topk(&rel, &disk, &sel, &f, &[0, 1], k))
        });
        g.bench_with_input(BenchmarkId::new("rank_mapping", k), &k, |b, &k| {
            b.iter(|| rm.topk(&rel, &disk, &sel, &f, &[0, 1], k))
        });
    }
    g.finish();
}

fn bench_fragments_covering(c: &mut Criterion) {
    // The fragments covering-set query: conditions spanning 1–3 fragments,
    // so the retrieve step streams a k-way posting-list intersection per
    // candidate block.
    let rel = SyntheticSpec { tuples: T, selection_dims: 6, cardinality: 5, ..Default::default() }
        .generate();
    let disk = DiskSim::with_defaults();
    let frags =
        RankingFragments::build(&rel, &disk, FragmentConfig { fragment_size: 2, block_size: 300 });
    let spans: [(usize, Vec<(usize, u32)>); 3] =
        [(1, vec![(0, 1), (1, 2)]), (2, vec![(0, 1), (2, 2)]), (3, vec![(0, 1), (2, 2), (4, 0)])];
    let mut g = c.benchmark_group("fragments_covering_set");
    for (span, conds) in spans {
        assert_eq!(frags.covering_fragments(&Selection::new(conds.clone())), span);
        g.bench_with_input(BenchmarkId::new("query", span), &conds, |b, conds| {
            let q = TopKQuery::new(conds.clone(), Linear::uniform(2), 10);
            b.iter(|| frags.query(&q, &disk))
        });
    }
    g.finish();
}

fn bench_coding(c: &mut Criterion) {
    use rcube_core::coding::{decode_node, encode_best};
    use rcube_storage::{BitReader, BitWriter};
    let mut sparse = rcube_storage::PackedBits::zeros(204);
    for i in (0..204).step_by(17) {
        sparse.set(i);
    }
    c.bench_function("signature_node_encode_decode", |b| {
        b.iter(|| {
            let mut w = BitWriter::new();
            encode_best(&sparse, 204, &mut w);
            let mut r = BitReader::new(w.as_bytes(), w.len());
            decode_node(&mut r, 204)
        })
    });
}

fn bench_maintenance(c: &mut Criterion) {
    use rcube_core::maintain::apply_path_updates;
    let pool = 4096;
    let full = SyntheticSpec { tuples: T + pool, ..Default::default() }.generate();
    let rel = full.prefix(T);
    c.bench_function("incremental_insert_one", |b| {
        let disk = DiskSim::with_defaults();
        let mut rtree = RTree::over_relation(&disk, &rel, &[], RTreeConfig::for_page(4096, 2));
        let mut cube = SignatureCube::build(&rel, &rtree, &disk, SignatureCubeConfig::default());
        let mut next = T as u32;
        b.iter(|| {
            if next >= (T + pool) as u32 {
                return; // pre-generated pool exhausted; later iters no-op
            }
            let ups = rtree.insert(&disk, next, full.ranking_point(next));
            apply_path_updates(
                &mut cube,
                &ups,
                |t| (0..3).map(|d| full.selection_value(t, d)).collect(),
                &disk,
            );
            next += 1;
        })
    });
}

criterion_group!(
    benches,
    bench_construction,
    bench_topk_query,
    bench_fragments_covering,
    bench_coding,
    bench_maintenance
);
criterion_main!(benches);
