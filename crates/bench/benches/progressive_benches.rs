//! Progressive-query benchmarks: the paper's *semi-online* property,
//! measured. Three claims, each gated on deterministic I/O counters (hard
//! even on CI — counters don't jitter; only wall-clock ratios soften
//! under `RCUBE_BENCH_SOFT`):
//!
//! 1. **Time-to-first-answer ≪ full-k time.** A bound-driven cursor
//!    certifies its first answer after reading strictly fewer blocks than
//!    draining the full top-k (the table-scan baseline is the recorded
//!    contrast: its first answer costs the whole scan).
//! 2. **`extend_k(Δ)` ≪ fresh top-(k+Δ).** Pagination resumes the paused
//!    frontier: the extension charges strictly fewer block reads than
//!    re-running the query at k+Δ, with identical items (the rank-mapping
//!    baseline is the recorded contrast: its bound oracle depends on k,
//!    so pagination re-plans and re-reads).
//! 3. Both hold identically on a cube reopened from a file.
//!
//! The run writes `BENCH_progressive.json` at the workspace root next to
//! the other `BENCH_*.json` trajectories.

use criterion::{criterion_group, criterion_main, Criterion};
use rcube_baseline::{RankMapping, TableScan};
use rcube_core::gridcube::{GridCubeConfig, GridRankingCube};
use rcube_core::query::{Query, QueryPlan, RankedSource, TopKCursor};
use rcube_core::sigcube::{SignatureCube, SignatureCubeConfig};
use rcube_func::Linear;
use rcube_index::rtree::{RTree, RTreeConfig};
use rcube_storage::DiskSim;
use rcube_table::gen::SyntheticSpec;
use rcube_table::Relation;

const K: usize = 50;
const DELTA: usize = 50;

struct Setup {
    rel: Relation,
    disk: DiskSim,
    grid: GridRankingCube,
    file_disk: DiskSim,
    file_grid: GridRankingCube,
    rtree: RTree,
    sig: SignatureCube,
    scan: TableScan,
    rank_map: RankMapping,
    path: std::path::PathBuf,
}

fn setup() -> Setup {
    let rel = SyntheticSpec { tuples: 20_000, cardinality: 5, ..Default::default() }.generate();
    let disk = DiskSim::with_defaults();
    // Finer blocks than the §3.5.1 default: more frontier steps between
    // answers, so the progressive profile (first ≪ full ≪ fresh) is
    // visible in whole-block counters at this scale.
    let grid = GridRankingCube::build(
        &rel,
        &disk,
        GridCubeConfig { block_size: 100, ..Default::default() },
    );
    let rtree = RTree::over_relation(&disk, &rel, &[], RTreeConfig::small(16));
    let sig = SignatureCube::build(&rel, &rtree, &disk, SignatureCubeConfig::default());
    let scan = TableScan::new(&rel, &disk);
    let rank_map = RankMapping::build(&rel, &disk);
    let mut path = std::env::temp_dir();
    path.push(format!("rcube_prog_bench_{}", std::process::id()));
    grid.save_to(&path).expect("save grid cube");
    let file_grid = GridRankingCube::open_from(&path).expect("reopen grid cube");
    Setup {
        rel,
        disk,
        grid,
        file_disk: DiskSim::with_defaults(),
        file_grid,
        rtree,
        sig,
        scan,
        rank_map,
        path,
    }
}

fn query(k: usize) -> Query {
    Query::select([(0, 1)]).rank(Linear::uniform(2)).top(k)
}

/// Counter profile of one progressive run: blocks charged up to the first
/// answer, up to k, and for an extend_k(Δ) resume, plus the answer stream.
struct Profile {
    blocks_first: u64,
    blocks_at_k: u64,
    blocks_extension: u64,
    items: Vec<(u32, f64)>,
}

fn profile<'a, S: RankedSource<'a>>(source: &S, plan: &QueryPlan<'a>) -> Profile {
    let mut cursor = source.open(plan).expect("open");
    let mut items = Vec::new();
    items.extend(cursor.next());
    let blocks_first = cursor.stats().blocks_read;
    for item in cursor.by_ref() {
        items.push(item);
    }
    let blocks_at_k = cursor.stats().blocks_read;
    cursor.extend_k(DELTA);
    items.extend(cursor.by_ref());
    let blocks_extension = cursor.stats().blocks_read - blocks_at_k;
    Profile { blocks_first, blocks_at_k, blocks_extension, items }
}

fn drain_blocks<'a, S: RankedSource<'a>>(
    source: &S,
    plan: &QueryPlan<'a>,
) -> (u64, Vec<(u32, f64)>) {
    let mut cursor: TopKCursor<'a> = source.open(plan).expect("open");
    let items: Vec<_> = cursor.by_ref().collect();
    (cursor.stats().blocks_read, items)
}

fn bench_progressive(c: &mut Criterion) {
    let s = setup();
    let q_k = query(K);
    let q_ext = query(K + DELTA);

    // --- Deterministic counters (run once, asserted hard) ---------------
    let mut lines = Vec::new();
    let mut record = |name: &str, p: &Profile, fresh_blocks: u64| {
        println!(
            "{name}: first answer after {} blocks, top-{K} after {}, extend_k({DELTA}) read {} vs fresh top-{} {}",
            p.blocks_first, p.blocks_at_k, p.blocks_extension, K + DELTA, fresh_blocks
        );
        lines.push(format!(
            "  \"{name}\": {{ \"blocks_first_answer\": {}, \"blocks_top_k\": {}, \"blocks_extension\": {}, \"blocks_fresh_k_plus_delta\": {}, \"k\": {K}, \"delta\": {DELTA} }}",
            p.blocks_first, p.blocks_at_k, p.blocks_extension, fresh_blocks
        ));
    };

    // Grid cube, in memory.
    let grid_src = s.grid.source(&s.disk);
    let p = profile(&grid_src, &q_k.plan());
    let (fresh_blocks, fresh_items) = drain_blocks(&grid_src, &q_ext.plan());
    assert_eq!(p.items, fresh_items, "grid: paginated items must equal a fresh top-(k+Δ)");
    assert!(
        p.blocks_first < p.blocks_at_k,
        "grid: first answer ({} blocks) must undercut the full top-{K} ({} blocks)",
        p.blocks_first,
        p.blocks_at_k
    );
    assert!(
        p.blocks_extension < fresh_blocks,
        "grid: extend_k read {} blocks, fresh top-{} read {} — resume must be strictly cheaper",
        p.blocks_extension,
        K + DELTA,
        fresh_blocks
    );
    record("grid_mem", &p, fresh_blocks);

    // Grid cube, reopened from file: the same profile must hold.
    let file_src = s.file_grid.source(&s.file_disk);
    let pf = profile(&file_src, &q_k.plan());
    let (fresh_file_blocks, fresh_file_items) = drain_blocks(&file_src, &q_ext.plan());
    assert_eq!(pf.items, fresh_file_items, "grid(file): pagination equality");
    assert_eq!(pf.items, p.items, "grid(file): answers must match in-memory");
    assert!(pf.blocks_first < pf.blocks_at_k, "grid(file): progressive first answer");
    assert!(pf.blocks_extension < fresh_file_blocks, "grid(file): resume strictly cheaper");
    record("grid_file", &pf, fresh_file_blocks);

    // Signature cube.
    let sig_src = s.sig.source(&s.rtree, &s.disk);
    let ps = profile(&sig_src, &q_k.plan());
    let (fresh_sig_blocks, fresh_sig_items) = drain_blocks(&sig_src, &q_ext.plan());
    assert_eq!(ps.items, fresh_sig_items, "signature: pagination equality");
    assert!(ps.blocks_first < ps.blocks_at_k, "signature: progressive first answer");
    assert!(ps.blocks_extension < fresh_sig_blocks, "signature: resume strictly cheaper");
    record("signature_mem", &ps, fresh_sig_blocks);

    // Table-scan baseline: the recorded contrast — the first answer costs
    // the entire scan, and extension is free only because all work is
    // front-loaded.
    let scan_src = s.scan.source(&s.rel, &s.disk);
    let pb = profile(&scan_src, &q_k.plan());
    let (fresh_scan_blocks, _) = drain_blocks(&scan_src, &q_ext.plan());
    assert_eq!(
        pb.blocks_first, pb.blocks_at_k,
        "table scan: first answer must cost the whole scan (the contrast)"
    );
    record("table_scan", &pb, fresh_scan_blocks);

    // Rank-mapping baseline: pagination re-plans and re-reads (the
    // order-sensitivity the paper criticizes).
    let rm_src = s.rank_map.source(&s.rel, &s.disk);
    let pr = profile(&rm_src, &q_k.plan());
    let (fresh_rm_blocks, _) = drain_blocks(&rm_src, &q_ext.plan());
    assert!(
        pr.blocks_extension >= fresh_rm_blocks,
        "rank-mapping: extension must re-read at least a fresh run's blocks ({} vs {})",
        pr.blocks_extension,
        fresh_rm_blocks
    );
    record("rank_mapping", &pr, fresh_rm_blocks);

    // --- Wall time -------------------------------------------------------
    let mut g = c.benchmark_group("progressive");
    g.bench_function("grid/first_answer", |b| {
        b.iter(|| {
            let mut cursor = grid_src.open(&q_k.plan()).expect("open");
            cursor.next().expect("at least one answer")
        })
    });
    g.bench_function("grid/full_top_k", |b| {
        b.iter(|| {
            let mut cursor = grid_src.open(&q_k.plan()).expect("open");
            cursor.by_ref().count()
        })
    });
    g.bench_function("grid/extend_after_k", |b| {
        b.iter(|| {
            let mut cursor = grid_src.open(&q_k.plan()).expect("open");
            cursor.by_ref().count();
            cursor.extend_k(DELTA);
            cursor.by_ref().count()
        })
    });
    g.bench_function("grid/fresh_k_plus_delta", |b| {
        b.iter(|| {
            let mut cursor = grid_src.open(&q_ext.plan()).expect("open");
            cursor.by_ref().count()
        })
    });
    g.bench_function("scan/first_answer", |b| {
        b.iter(|| {
            let mut cursor = scan_src.open(&q_k.plan()).expect("open");
            cursor.next().expect("at least one answer")
        })
    });
    g.finish();

    emit_json(c, &lines, &p, fresh_blocks, &pb);
    std::fs::remove_file(&s.path).ok();
}

fn emit_json(c: &mut Criterion, lines: &[String], grid: &Profile, grid_fresh: u64, scan: &Profile) {
    let ms = c.measurements().to_vec();
    let find = |id: &str| ms.iter().find(|m| m.id == id).map(|m| m.mean_ns);
    let ratio = |num: &str, den: &str| match (find(num), find(den)) {
        (Some(n), Some(d)) if n > 0.0 => d / n,
        _ => 0.0,
    };
    let ttfa_speedup = ratio("progressive/grid/first_answer", "progressive/grid/full_top_k");
    let scan_ttfa_vs_grid = ratio("progressive/grid/first_answer", "progressive/scan/first_answer");

    let mut json = String::from("{\n  \"bench\": \"progressive\",\n  \"unit\": \"ns_per_iter\",\n");
    json.push_str(&rcube_bench::bench_env_json());
    json.push_str("  \"results\": {\n");
    for (i, m) in ms.iter().enumerate() {
        let sep = if i + 1 == ms.len() { "" } else { "," };
        json.push_str(&format!("    \"{}\": {:.1}{}\n", m.id, m.mean_ns, sep));
    }
    json.push_str("  },\n");
    for line in lines {
        json.push_str(line);
        json.push_str(",\n");
    }
    json.push_str(&format!(
        "  \"grid_first_answer_block_reduction\": {:.2},\n  \"grid_extension_vs_fresh_blocks\": {:.2},\n  \"grid_ttfa_wall_speedup_vs_full_k\": {ttfa_speedup:.2},\n  \"grid_ttfa_wall_speedup_vs_scan_ttfa\": {scan_ttfa_vs_grid:.2},\n  \"scan_first_answer_blocks\": {},\n  \"gates\": \"first<full and extension<fresh are hard deterministic counter gates\"\n}}\n",
        grid.blocks_at_k as f64 / grid.blocks_first.max(1) as f64,
        grid_fresh as f64 / grid.blocks_extension.max(1) as f64,
        scan.blocks_first,
    ));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_progressive.json");
    std::fs::write(path, &json).expect("write BENCH_progressive.json");
    println!("wrote {path}");
    println!(
        "progressive: first answer {:.1}x fewer blocks than full top-{K}, extension {:.1}x fewer than fresh re-query, ttfa {ttfa_speedup:.2}x faster wall",
        grid.blocks_at_k as f64 / grid.blocks_first.max(1) as f64,
        grid_fresh as f64 / grid.blocks_extension.max(1) as f64,
    );
}

criterion_group!(benches, bench_progressive);
criterion_main!(benches);
