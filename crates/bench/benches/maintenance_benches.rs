//! Live-vacuum maintenance benchmark: reader threads pinned on the
//! generation they opened keep streaming top-k answers while the
//! maintenance path runs whole compact-and-swap cycles — COW patch
//! commit, vacuum into a sibling temp file, atomic rename-over publish —
//! against the same cube file.
//!
//! The run writes `BENCH_maintenance.json` at the workspace root with two
//! gate families:
//!
//! * **Deterministic (always hard):** every answer any pinned reader
//!   produces during the vacuum storm is byte-identical to its opened
//!   generation (`inconsistent_answers` must be exactly zero); every
//!   cycle reclaims pages (`pages_reclaimed_total > 0`) and ends with a
//!   clean, zero-retired compacted file; the final file answers
//!   byte-identically to a serial maintain-only twin (vacuum is
//!   answer-neutral); and the obs instruments (vacuum counter, duration
//!   histogram, lock-contention counter) saw every cycle.
//! * **Clock (hard unless `RCUBE_BENCH_SOFT` is set):** reader
//!   throughput during the vacuum storm must hold at least 0.8x the
//!   steady-state throughput measured on the same pinned handles just
//!   before — compaction is a background maintenance task, not a
//!   stop-the-world event.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use ranking_cube::cube::maintain::apply_path_updates;
use ranking_cube::cube::scheduler::{vacuum_into_place, MaintenanceConfig};
use ranking_cube::cube::sigcube::{SignatureCube, SignatureCubeConfig};
use ranking_cube::cube::sigquery::topk_signature;
use ranking_cube::cube::TopKQuery;
use ranking_cube::func::Linear;
use ranking_cube::index::rtree::{RTree, RTreeConfig};
use ranking_cube::obs::Metrics;
use ranking_cube::storage::{DiskSim, FileBackend, PageStore};
use ranking_cube::table::gen::SyntheticSpec;
use ranking_cube::table::Relation;

const PAGE: usize = 4096;
const POOL: usize = 4096;
const READERS: usize = 4;
/// High cardinality keeps each maintenance batch patching a fraction of
/// the cells, so every cycle retires pages without rewriting the file.
const CARDINALITY: u32 = 32;
const BASE: usize = 9_850;
const TOTAL: usize = 10_000;
/// Full maintain-commit-vacuum-swap cycles run during the storm window.
const CYCLES: usize = 3;
/// Reader phases, indexed by the `phase` atomic.
const PHASE_STEADY: u64 = 0;
const PHASE_STORM: u64 = 1;
const PHASE_DONE: u64 = 2;

fn temp_path(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("rcube_maint_bench_{tag}_{}", std::process::id()));
    p
}

fn render(items: &[(u32, f64)]) -> String {
    items.iter().map(|(t, s)| format!("{t}:{:016x}", s.to_bits())).collect::<Vec<_>>().join(",")
}

fn workload() -> Vec<(Vec<(usize, u32)>, usize)> {
    vec![(vec![(0, 1)], 10), (vec![(1, 2)], 8), (vec![(0, 0), (1, 1)], 10), (vec![(2, 3)], 5)]
}

fn answers(cube: &SignatureCube, rtree: &RTree, disk: &DiskSim) -> Vec<String> {
    workload()
        .into_iter()
        .map(|(conds, k)| {
            let q = TopKQuery::new(conds, Linear::uniform(2), k);
            render(&topk_signature(rtree, cube, &q, disk).items)
        })
        .collect()
}

/// One maintenance round: R-tree inserts for `from..to`, COW cell
/// patches, one generational commit. Drops the writable handle (and its
/// writer lock) before returning.
fn maintain_and_commit(path: &std::path::Path, rel: &Relation, from: usize, to: usize) {
    let store = PageStore::open_file_writable(path, POOL).expect("open writable");
    let (mut cube, mut rtree) = SignatureCube::open_store(store).expect("decode catalog");
    let disk = DiskSim::with_defaults();
    for tid in from..to {
        let updates = rtree.insert(&disk, tid as u32, rel.ranking_point(tid as u32));
        apply_path_updates(
            &mut cube,
            &updates,
            |t| (0..rel.schema().num_selection()).map(|d| rel.selection_value(t, d)).collect(),
            &disk,
        );
    }
    cube.commit(&rtree).expect("patch commit");
}

fn main() {
    let soft = std::env::var_os("RCUBE_BENCH_SOFT").is_some();
    let hardware = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let rel =
        SyntheticSpec { tuples: TOTAL, cardinality: CARDINALITY, ..Default::default() }.generate();
    let base_rel = rel.prefix(BASE);
    let disk = DiskSim::with_defaults();
    let rtree = RTree::over_relation(&disk, &base_rel, &[], RTreeConfig::small(16));
    let cube = SignatureCube::build(
        &base_rel,
        &rtree,
        &disk,
        SignatureCubeConfig { alpha: 0.05, ..Default::default() },
    );
    let live_path = temp_path("live");
    cube.save_to_with(&rtree, &live_path, PAGE, POOL).expect("save base cube");
    drop((cube, rtree));

    // Serial maintain-only twin: the deterministic reference the
    // vacuumed file must answer identically to — proving every swap was
    // answer-neutral.
    let twin_path = temp_path("twin");
    std::fs::copy(&live_path, &twin_path).expect("copy base file");
    let step = (TOTAL - BASE) / CYCLES;
    for c in 0..CYCLES {
        let from = BASE + c * step;
        maintain_and_commit(&twin_path, &rel, from, from + step);
    }
    let ans_twin = {
        let (cube, rtree) = SignatureCube::open_from_with(&twin_path, POOL).expect("twin open");
        answers(&cube, &rtree, &disk)
    };
    std::fs::remove_file(&twin_path).ok();

    let (ans_a, gen_a) = {
        let (cube, rtree) = SignatureCube::open_from_with(&live_path, POOL).expect("open");
        (answers(&cube, &rtree, &disk), cube.store().generation().unwrap())
    };

    let config = MaintenanceConfig {
        watermark_pages: 1,
        poll_interval: Duration::from_millis(10),
        page_size: PAGE,
        pool_pages: POOL,
        ..MaintenanceConfig::default()
    };
    let metrics = Metrics::new();
    let phase = AtomicU64::new(PHASE_STEADY);
    let queries_steady = AtomicU64::new(0);
    let queries_storm = AtomicU64::new(0);
    let inconsistent = AtomicU64::new(0);
    let mut reclaimed_total = 0u64;
    let mut vacuum_us: Vec<u64> = Vec::new();
    let (mut steady_secs, mut storm_secs) = (0.0f64, 0.0f64);

    std::thread::scope(|s| {
        for _ in 0..READERS {
            let (phase, queries_steady, queries_storm, inconsistent) =
                (&phase, &queries_steady, &queries_storm, &inconsistent);
            let (live_path, ans_a) = (&live_path, &ans_a);
            s.spawn(move || {
                // Pinned once, before any maintenance: this handle rides
                // the old inode through every rename underneath it.
                let (cube, rtree) =
                    SignatureCube::open_from_with(live_path, 256).expect("reader open");
                assert_eq!(cube.store().generation(), Some(gen_a), "reader must pin base gen");
                let disk = DiskSim::with_defaults();
                loop {
                    let ph = phase.load(Ordering::Acquire);
                    if ph == PHASE_DONE {
                        break;
                    }
                    for (i, (conds, k)) in workload().into_iter().enumerate() {
                        let q = TopKQuery::new(conds, Linear::uniform(2), k);
                        let got = render(&topk_signature(&rtree, &cube, &q, &disk).items);
                        if got != ans_a[i] {
                            inconsistent.fetch_add(1, Ordering::Relaxed);
                        }
                        let counter =
                            if ph == PHASE_STEADY { queries_steady } else { queries_storm };
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        // Steady-state window: pinned readers, no maintenance running.
        let t0 = Instant::now();
        std::thread::sleep(Duration::from_millis(400));
        steady_secs = t0.elapsed().as_secs_f64();
        phase.store(PHASE_STORM, Ordering::Release);

        // Storm window: full maintain + commit + vacuum + swap cycles.
        let t1 = Instant::now();
        for c in 0..CYCLES {
            let from = BASE + c * step;
            maintain_and_commit(&live_path, &rel, from, from + step);
            let report =
                vacuum_into_place(&live_path, &config, &metrics, None).expect("live vacuum cycle");
            assert!(report.reclaimed_pages > 0, "cycle {c} reclaimed nothing");
            reclaimed_total += report.reclaimed_pages;
            vacuum_us.push(report.duration.as_micros() as u64);
            std::thread::sleep(Duration::from_millis(40));
        }
        storm_secs = t1.elapsed().as_secs_f64();
        phase.store(PHASE_DONE, Ordering::Release);
    });

    let qps_steady = queries_steady.load(Ordering::Relaxed) as f64 / steady_secs;
    let qps_storm = queries_storm.load(Ordering::Relaxed) as f64 / storm_secs;
    let ratio = qps_storm / qps_steady.max(f64::MIN_POSITIVE);
    let bad = inconsistent.load(Ordering::Relaxed);
    let mean_vacuum_us = vacuum_us.iter().sum::<u64>() as f64 / vacuum_us.len().max(1) as f64;
    println!(
        "maintenance: {READERS} pinned readers {qps_steady:.0} qps steady vs {qps_storm:.0} qps \
         during {CYCLES} vacuum cycles (ratio {ratio:.2}, {reclaimed_total} pages reclaimed, \
         mean vacuum {mean_vacuum_us:.0}us, {bad} inconsistent answers)"
    );

    // --- Hard deterministic gates ---------------------------------------
    assert_eq!(bad, 0, "a pinned reader observed bytes from a foreign generation mid-swap");
    assert!(reclaimed_total > 0, "the vacuum cycles must reclaim pages");
    let sb = FileBackend::peek_superblock(&live_path).expect("peek compacted file");
    assert_eq!(sb.retired_pages, 0, "the final compacted file must carry no retired pages");
    {
        let (cube, rtree) = SignatureCube::open_from_with(&live_path, POOL).expect("final open");
        cube.verify_integrity().expect("final compacted file verifies clean");
        let ans_final = answers(&cube, &rtree, &disk);
        assert_eq!(ans_final, ans_twin, "vacuum cycles must be answer-neutral");
        assert_ne!(ans_final, ans_a, "maintenance must have changed some answer");
    }
    assert_eq!(metrics.counter("maintenance.vacuums").get(), CYCLES as u64);
    assert_eq!(metrics.counter("maintenance.pages_reclaimed").get(), reclaimed_total);
    assert_eq!(metrics.histogram("maintenance.vacuum_duration_us").count(), CYCLES as u64);
    assert_eq!(metrics.counter("maintenance.lock_contention").get(), 0);

    // --- Clock gate: readers must not stall during the storm ------------
    let enforce = !soft && hardware > READERS;
    if enforce {
        assert!(
            ratio >= 0.8,
            "reader throughput during live vacuum fell to {ratio:.2}x of steady-state \
             (gate: >= 0.8x)"
        );
    } else if ratio < 0.8 {
        eprintln!(
            "WARNING: vacuum-window throughput ratio {ratio:.2} below the 0.8 target (soft: \
             {hardware} hardware threads{})",
            if soft { ", RCUBE_BENCH_SOFT" } else { "" }
        );
    }

    // --- BENCH_maintenance.json -----------------------------------------
    let mut json = String::from("{\n  \"bench\": \"maintenance\",\n");
    json.push_str(&rcube_bench::bench_env_json());
    json.push_str(&format!("  \"hardware_threads\": {hardware},\n"));
    json.push_str(&format!("  \"readers\": {READERS},\n  \"vacuum_cycles\": {CYCLES},\n"));
    json.push_str(&format!(
        "  \"reader_qps_steady\": {qps_steady:.1},\n  \"reader_qps_during_vacuum\": \
         {qps_storm:.1},\n  \"qps_ratio\": {ratio:.3},\n"
    ));
    json.push_str(&format!("  \"inconsistent_answers\": {bad},\n"));
    json.push_str(&format!(
        "  \"pages_reclaimed_total\": {reclaimed_total},\n  \"vacuum_duration_us_mean\": \
         {mean_vacuum_us:.0},\n"
    ));
    json.push_str(&format!(
        "  \"lock_contention\": {}\n}}\n",
        metrics.counter("maintenance.lock_contention").get()
    ));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_maintenance.json");
    std::fs::write(path, &json).expect("write BENCH_maintenance.json");
    println!("wrote {path}");
    std::fs::remove_file(&live_path).ok();
}
