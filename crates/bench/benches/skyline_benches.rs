//! Criterion micro-benchmarks for skyline queries (Chapter 7) and the
//! multi-relation rank join (Chapter 6).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcube_core::sigcube::{SignatureCube, SignatureCubeConfig};
use rcube_index::rtree::{RTree, RTreeConfig};
use rcube_join::{full_join_topk, optimize, JoinRelation, RankJoin, RelQuery, SpjrQuery};
use rcube_skyline::bbs::skyline_ranking_first;
use rcube_skyline::bnl::bnl_skyline;
use rcube_skyline::{SkylineEngine, SkylineQuery};
use rcube_storage::DiskSim;
use rcube_table::gen::SyntheticSpec;
use rcube_table::Selection;

const T: usize = 20_000;

fn bench_skyline(c: &mut Criterion) {
    let rel = SyntheticSpec { tuples: T, ..Default::default() }.generate();
    let disk = DiskSim::with_defaults();
    let rtree = RTree::over_relation(&disk, &rel, &[], RTreeConfig::for_page(4096, 2));
    let cube = SignatureCube::build(&rel, &rtree, &disk, SignatureCubeConfig::default());
    let engine = SkylineEngine::new(&rtree, &cube);
    let q = SkylineQuery::new(vec![(0, 1)], vec![0, 1]);

    let mut g = c.benchmark_group("skyline");
    g.sample_size(10);
    g.bench_function("signature_bbs", |b| b.iter(|| engine.skyline(&q, &disk)));
    g.bench_function("ranking_first", |b| {
        b.iter(|| skyline_ranking_first(&rtree, &rel, &q, &disk))
    });
    g.bench_function("bnl", |b| b.iter(|| bnl_skyline(&rel, &q)));
    g.bench_function("drill_down_reuse", |b| {
        let (_, session) = engine.skyline(&q, &disk);
        b.iter(|| engine.drill_down(&session, 1, 2, &disk))
    });
    g.finish();
}

fn bench_rank_join(c: &mut Criterion) {
    let disk = DiskSim::with_defaults();
    let mk = |seed: u64| {
        let rel =
            SyntheticSpec { tuples: T / 4, cardinality: 10, seed, ..Default::default() }.generate();
        let mut rng = StdRng::seed_from_u64(seed + 7);
        let keys: Vec<u32> = (0..rel.len()).map(|_| rng.gen_range(0..100)).collect();
        JoinRelation::build(rel, keys, &disk)
    };
    let r1 = mk(91);
    let r2 = mk(92);
    let q = SpjrQuery {
        relations: vec![
            RelQuery { selection: Selection::new(vec![(0, 1)]), weights: vec![1.0, 0.5] },
            RelQuery { selection: Selection::new(vec![(1, 2)]), weights: vec![0.8, 1.2] },
        ],
        k: 10,
    };
    let rels = [&r1, &r2];
    let plan = optimize(&rels, &q);

    let mut g = c.benchmark_group("rank_join");
    g.sample_size(10);
    g.bench_function("rank_join_top10", |b| b.iter(|| RankJoin::run(&rels, &q, &plan, &disk)));
    g.bench_function("join_then_rank", |b| b.iter(|| full_join_topk(&rels, &q, &disk)));
    g.finish();
}

criterion_group!(benches, bench_skyline, bench_rank_join);
criterion_main!(benches);
