//! Experiment harness regenerating every table and figure of the thesis'
//! evaluation chapters (see DESIGN.md §3 for the full index).
//!
//! Each `repro_chN` binary accepts figure ids (`fig3_4`, `table5_1`, …) or
//! `all`; it prints one series table per figure in the same shape as the
//! paper's plot: one row per x-value, one column per method. Absolute
//! numbers are laptop-scale (set `RCUBE_SCALE` to grow the data sizes; the
//! default base is 20 000 tuples vs the paper's 1–10 M); the reproduction
//! target is the *shape* — who wins, by roughly what factor, and where
//! crossovers fall.

use std::time::Instant;

use rcube_storage::IoSnapshot;
use rcube_table::gen::{DataDist, SyntheticSpec};
use rcube_table::workload::{QueryGen, QuerySpec, WorkloadParams, ZipfQueryGen};
use rcube_table::Relation;

/// Global scale knob: data sizes multiply by `RCUBE_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("RCUBE_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

/// Base tuple count `T` after scaling (paper default: 3M; ours: 20k).
pub fn base_tuples() -> usize {
    (20_000.0 * scale()) as usize
}

/// Queries averaged per measurement point (paper: 20; ours: 5).
pub const QUERIES_PER_POINT: usize = 5;

/// Milliseconds elapsed while running `f`.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Cost model for "execution time" figures: the simulated disk charges no
/// wall-clock latency, so reported times combine measured CPU with a
/// per-operation I/O charge. The charges (0.1 ms per physical page read,
/// 0.2 ms per random tuple access) approximate the sequential/random cost
/// ratio of the thesis' 2007-era disk subsystem; EXPERIMENTS.md records
/// this substitution.
pub const READ_MS: f64 = 0.1;
/// Per random access charge (non-clustered row fetch).
pub const RANDOM_MS: f64 = 0.2;

/// Total modeled milliseconds for a run: CPU + charged I/O.
pub fn cost_ms(cpu_ms: f64, io: IoSnapshot) -> f64 {
    cpu_ms + io.disk_reads as f64 * READ_MS + io.random_accesses as f64 * RANDOM_MS
}

/// The `"bench_env"` JSON block every `BENCH_*.json` emitter embeds
/// (hardware threads, simulated page size, build profile), so archived
/// artifacts from different machines and build modes stay comparable.
/// Splice it right after the opening `"bench"` line; it ends with `,\n`.
pub fn bench_env_json() -> String {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let profile = if cfg!(debug_assertions) { "debug" } else { "release" };
    format!(
        "  \"bench_env\": {{ \"hardware_threads\": {threads}, \"page_size_bytes\": {}, \
         \"build_profile\": \"{profile}\" }},\n",
        rcube_storage::DEFAULT_PAGE_SIZE
    )
}

/// A measurement series: named method → one value per x point.
#[derive(Debug, Default)]
pub struct Series {
    columns: Vec<(String, Vec<f64>)>,
}

impl Series {
    pub fn push(&mut self, method: &str, value: f64) {
        match self.columns.iter_mut().find(|(n, _)| n == method) {
            Some((_, v)) => v.push(value),
            None => self.columns.push((method.to_string(), vec![value])),
        }
    }

    pub fn columns(&self) -> &[(String, Vec<f64>)] {
        &self.columns
    }
}

/// Prints a figure table: header, one row per x value, one column per
/// method (the paper-plot shape).
pub fn print_figure(id: &str, title: &str, x_label: &str, xs: &[String], series: &Series) {
    println!();
    println!("== {id}: {title} ==");
    print!("{:>14}", x_label);
    for (name, _) in series.columns() {
        print!("{name:>16}");
    }
    println!();
    for (i, x) in xs.iter().enumerate() {
        print!("{x:>14}");
        for (_, vals) in series.columns() {
            match vals.get(i) {
                Some(v) if v.abs() >= 1000.0 => print!("{v:>16.0}"),
                Some(v) => print!("{v:>16.3}"),
                None => print!("{:>16}", "-"),
            }
        }
        println!();
    }
}

/// Standard synthetic data (Table 3.8 defaults at laptop scale).
pub fn synthetic(tuples: usize, s: usize, c: u32, r: usize, dist: DataDist, seed: u64) -> Relation {
    SyntheticSpec { tuples, selection_dims: s, cardinality: c, ranking_dims: r, dist, seed }
        .generate()
}

/// Standard query batch (Table 3.9 defaults).
pub fn query_batch(
    rel: &Relation,
    s: usize,
    r: usize,
    k: usize,
    u: f64,
    n: usize,
    seed: u64,
) -> Vec<QuerySpec> {
    let mut qg =
        QueryGen::new(WorkloadParams { num_conditions: s, num_ranking: r, k, skewness: u, seed });
    qg.batch(rel, n)
}

/// Zipf-skewed query batch: like [`query_batch`], but selection values
/// are drawn rank-frequency Zipf(`value_skew`) per dimension (value 0 is
/// the hottest), modeling the hot-key skew real workloads show. Seeded
/// and deterministic — the shard bench uses this mix so repeated runs
/// gate on identical per-shard counters.
#[allow(clippy::too_many_arguments)]
pub fn zipf_query_batch(
    rel: &Relation,
    s: usize,
    r: usize,
    k: usize,
    u: f64,
    value_skew: f64,
    n: usize,
    seed: u64,
) -> Vec<QuerySpec> {
    let mut qg = ZipfQueryGen::new(
        WorkloadParams { num_conditions: s, num_ranking: r, k, skewness: u, seed },
        value_skew,
    );
    qg.batch(rel, n)
}

/// One reproducible figure: its id and the closure that regenerates it.
pub type Figure<'a> = (&'a str, Box<dyn FnMut() + 'a>);

/// Runs the figures selected on the command line: each entry of `figures`
/// is `(id, runner)`; no arguments or `all` runs everything.
pub fn run_selected(figures: &mut [Figure<'_>]) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run_all = args.is_empty() || args.iter().any(|a| a == "all");
    let mut matched = false;
    for (id, runner) in figures.iter_mut() {
        if run_all || args.iter().any(|a| a == id) {
            runner();
            matched = true;
        }
    }
    if !matched {
        eprintln!("unknown figure id; available:");
        for (id, _) in figures.iter() {
            eprintln!("  {id}");
        }
        std::process::exit(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accumulates_by_method() {
        let mut s = Series::default();
        s.push("a", 1.0);
        s.push("b", 2.0);
        s.push("a", 3.0);
        assert_eq!(s.columns().len(), 2);
        assert_eq!(s.columns()[0].1, vec![1.0, 3.0]);
    }

    #[test]
    fn time_ms_returns_value() {
        let (v, ms) = time_ms(|| 42);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }

    #[test]
    fn bench_env_block_is_well_formed() {
        let block = bench_env_json();
        assert!(block.starts_with("  \"bench_env\": {"));
        assert!(block.ends_with(",\n"));
        assert!(block.contains("\"hardware_threads\":"));
        assert!(block.contains("\"page_size_bytes\": 4096"));
        assert!(block.contains("\"build_profile\":"));
    }

    #[test]
    fn synthetic_uses_parameters() {
        let r = synthetic(100, 4, 7, 3, DataDist::Uniform, 1);
        assert_eq!(r.len(), 100);
        assert_eq!(r.schema().num_selection(), 4);
        assert_eq!(r.schema().num_ranking(), 3);
    }
}
