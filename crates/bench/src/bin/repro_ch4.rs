//! Reproduces the Chapter 4 evaluation (Table 4.2, Figures 4.8–4.13): the
//! signature-based ranking cube — construction and space costs, adaptive
//! compression, incremental maintenance, and query performance against the
//! Boolean-first and ranking-first strategies.

use rcube_baseline::{BooleanFirst, RankingFirst};
use rcube_bench::{base_tuples, cost_ms, print_figure, synthetic, time_ms, Series};
use rcube_core::coding::{self, Scheme};
use rcube_core::maintain::apply_path_updates;
use rcube_core::sigcube::{SignatureCube, SignatureCubeConfig};
use rcube_core::sigquery::topk_signature;
use rcube_core::TopKQuery;
use rcube_func::{GeneralSq, Linear, RankFn, SqDist};
use rcube_index::bptree::BPlusTree;
use rcube_index::rtree::{RTree, RTreeConfig};
use rcube_index::HierIndex;
use rcube_storage::{BitWriter, DiskSim};
use rcube_table::gen::DataDist;
use rcube_table::Relation;

/// Chapter 4 defaults: Db = 3 Boolean dims, Dp = 3 ranking dims, C = 100.
fn ch4_data(tuples: usize, c: u32, seed: u64) -> Relation {
    synthetic(tuples, 3, c, 3, DataDist::Uniform, seed)
}

fn build_all(rel: &Relation, disk: &DiskSim) -> (RTree, SignatureCube) {
    let rtree = RTree::over_relation(disk, rel, &[], RTreeConfig::for_page(4096, 3));
    let cube = SignatureCube::build(rel, &rtree, disk, SignatureCubeConfig::default());
    (rtree, cube)
}

fn table4_2() {
    // The running example: a 28-bit array under every coding scheme
    // (M = 32). The thesis reports BL/RL/PI/PC sizes for this node.
    let bits = rcube_storage::PackedBits::from_bools(
        &"0110000000110000000000000001".chars().map(|c| c == '1').collect::<Vec<bool>>(),
    );
    println!();
    println!("== Table 4.2: encoding a node with M = 32 ==");
    println!("{:>10} {:>12}", "scheme", "total bits");
    for scheme in Scheme::all() {
        let mut w = BitWriter::new();
        match coding::encode_with(scheme, &bits, 32, &mut w) {
            Some(total) => println!("{:>10} {:>12}", format!("{scheme:?}"), total),
            None => println!("{:>10} {:>12}", format!("{scheme:?}"), "n/a"),
        }
    }
    let mut w = BitWriter::new();
    let best = coding::encode_best(&bits, 32, &mut w);
    println!("adaptive choice: {best:?} ({} bits)", w.len());
}

fn fig4_8() {
    let base = base_tuples();
    let ts = [base / 2, base, 2 * base];
    let mut series = Series::default();
    for &t in &ts {
        let rel = ch4_data(t, 100, 41);
        let disk = DiskSim::with_defaults();
        let rtree = RTree::over_relation(&disk, &rel, &[], RTreeConfig::for_page(4096, 3));
        let (_, cube_ms) =
            time_ms(|| SignatureCube::build(&rel, &rtree, &disk, SignatureCubeConfig::default()));
        // The thesis builds its R-tree by per-tuple insertion (bulk loading
        // is what the *cube* construction consumes); measure that mode.
        let (_, rtree_ms) = time_ms(|| {
            let mut t2 = RTree::bulk_load(
                &disk,
                vec![(0, rel.ranking_point(0))],
                RTreeConfig::for_page(4096, 3),
            );
            for tid in 1..rel.len() as u32 {
                t2.insert(&disk, tid, rel.ranking_point(tid));
            }
        });
        let (_, btree_ms) = time_ms(|| {
            for d in 0..rel.schema().num_selection() {
                let entries =
                    rel.tids().map(|tid| (rel.selection_value(tid, d) as f64, tid)).collect();
                let _ = BPlusTree::bulk_load(&disk, entries);
            }
        });
        series.push("P-Cube", cube_ms);
        series.push("R-tree", rtree_ms);
        series.push("B-tree", btree_ms);
    }
    print_figure(
        "Fig 4.8",
        "construction time (ms) w.r.t. T",
        "T",
        &ts.map(|t| t.to_string()),
        &series,
    );
}

fn fig4_9() {
    let base = base_tuples();
    let ts = [base / 2, base, 2 * base];
    let mut series = Series::default();
    for &t in &ts {
        let rel = ch4_data(t, 100, 42);
        let disk = DiskSim::with_defaults();
        let (rtree, cube) = build_all(&rel, &disk);
        let btree_bytes: usize = (0..rel.schema().num_selection())
            .map(|d| {
                let entries =
                    rel.tids().map(|tid| (rel.selection_value(tid, d) as f64, tid)).collect();
                BPlusTree::bulk_load(&disk, entries).byte_size()
            })
            .sum();
        series.push("R-tree (MB)", rtree.byte_size() as f64 / 1e6);
        series.push("B-tree (MB)", btree_bytes as f64 / 1e6);
        series.push("P-Cube (MB)", cube.materialized_bytes() as f64 / 1e6);
    }
    print_figure("Fig 4.9", "materialized size w.r.t. T", "T", &ts.map(|t| t.to_string()), &series);
}

fn fig4_10() {
    // Adaptive compression vs baseline-only coding as cardinality grows.
    let cs = [10u32, 100, 1000];
    let mut series = Series::default();
    for &c in &cs {
        let rel = ch4_data(base_tuples(), c, 43);
        let disk = DiskSim::with_defaults();
        let rtree = RTree::over_relation(&disk, &rel, &[], RTreeConfig::for_page(4096, 3));
        let cube = SignatureCube::build(&rel, &rtree, &disk, SignatureCubeConfig::default());
        series.push("Compress (MB)", cube.materialized_bytes() as f64 / 1e6);
        // Baseline coding size: every signature node stored as a raw
        // length-prefixed bit array (the BL scheme), estimated from the
        // per-cell signature structure.
        let m = rtree.max_fanout();
        let mut bl_bits = 0usize;
        for d in 0..rel.schema().num_selection() {
            for v in 0..c {
                if let Some(stored) = cube.cell_signature(&[d], &[v]) {
                    let sig = stored.load_full(&disk, cube.store());
                    bl_bits += sig.node_count() * (rcube_storage::bits_for(m) + m);
                }
            }
        }
        series.push("Baseline (MB)", bl_bits as f64 / 8.0 / 1e6);
    }
    print_figure(
        "Fig 4.10",
        "signature size w.r.t. cardinality C (adaptive vs BL-only)",
        "C",
        &cs.map(|c| c.to_string()),
        &series,
    );
}

fn fig4_11() {
    // Incremental update cost: inserting 1 / 10 / 100 tuples.
    let base = base_tuples();
    let sizes = [base / 2, base, 2 * base];
    let batches = [1usize, 10, 100];
    let mut series = Series::default();
    for &batch in &batches {
        for &t in &sizes {
            let full = ch4_data(t + 200, 100, 44);
            let rel = full.prefix(t);
            let disk = DiskSim::with_defaults();
            let mut rtree = RTree::over_relation(&disk, &rel, &[], RTreeConfig::for_page(4096, 3));
            let mut cube =
                SignatureCube::build(&rel, &rtree, &disk, SignatureCubeConfig::default());
            // Batch maintenance (Algorithm 2 takes a *set* of new tuples):
            // collect every path update, then apply them cell-by-cell once.
            let (_, ms) = time_ms(|| {
                let mut updates = Vec::new();
                for tid in t as u32..(t + batch) as u32 {
                    updates.extend(rtree.insert(&disk, tid, full.ranking_point(tid)));
                }
                apply_path_updates(
                    &mut cube,
                    &updates,
                    |x| {
                        (0..full.schema().num_selection())
                            .map(|d| full.selection_value(x, d))
                            .collect()
                    },
                    &disk,
                );
            });
            series.push(&format!("T={t}"), ms);
        }
    }
    print_figure(
        "Fig 4.11",
        "incremental update time (ms) w.r.t. batch size",
        "#inserted",
        &batches.map(|b| b.to_string()),
        &series,
    );
}

fn fig4_12() {
    let rel = ch4_data(base_tuples(), 10, 45);
    let disk = DiskSim::with_defaults();
    let (rtree, cube) = build_all(&rel, &disk);
    let bf = BooleanFirst::build(&rel, &disk);
    let ks = [10usize, 20, 50, 100];
    let mut series = Series::default();
    for &k in &ks {
        let f = Linear::new(vec![0.7, 1.1, 0.4]);
        let q = TopKQuery::new(vec![(0, 5), (1, 9)], f.clone(), k);
        disk.clear_buffer();
        let (res, cpu) = time_ms(|| bf.topk(&rel, &disk, &q.selection, &f, &[0, 1, 2], k));
        series.push("Boolean", cost_ms(cpu, res.stats.io));
        disk.clear_buffer();
        let (res, cpu) = time_ms(|| RankingFirst::topk(&rtree, &rel, &q, &disk));
        series.push("Ranking", cost_ms(cpu, res.stats.io));
        disk.clear_buffer();
        let (res, cpu) = time_ms(|| topk_signature(&rtree, &cube, &q, &disk));
        series.push("Signature", cost_ms(cpu, res.stats.io));
    }
    print_figure(
        "Fig 4.12",
        "execution time (ms) w.r.t. k",
        "k",
        &ks.map(|k| k.to_string()),
        &series,
    );
}

fn fig4_13() {
    let rel = ch4_data(base_tuples(), 10, 46);
    let disk = DiskSim::with_defaults();
    let (rtree, cube) = build_all(&rel, &disk);
    let functions: Vec<(&str, Box<dyn RankFn>)> = vec![
        ("Linear", Box::new(Linear::new(vec![0.9, 0.5, 1.3]))),
        ("Distance", Box::new(SqDist::new(vec![0.2, 0.8, 0.5]))),
        ("General", Box::new(GeneralSq::mse3())),
    ];
    let mut series = Series::default();
    let mut xs = Vec::new();
    for (name, f) in functions {
        xs.push(name.to_string());
        let q = TopKQuery::new(vec![(0, 5), (1, 9)], f, 100);
        disk.clear_buffer();
        let rf = RankingFirst::topk(&rtree, &rel, &q, &disk);
        series.push("Ranking", rf.stats.blocks_read as f64);
        disk.clear_buffer();
        let sig = topk_signature(&rtree, &cube, &q, &disk);
        series.push("Signature", sig.stats.blocks_read as f64);
    }
    print_figure(
        "Fig 4.13",
        "R-tree block accesses w.r.t. ranking function (k = 100)",
        "function",
        &xs,
        &series,
    );
}

fn main() {
    let mut figures: Vec<rcube_bench::Figure> = vec![
        ("table4_2", Box::new(table4_2)),
        ("fig4_8", Box::new(fig4_8)),
        ("fig4_9", Box::new(fig4_9)),
        ("fig4_10", Box::new(fig4_10)),
        ("fig4_11", Box::new(fig4_11)),
        ("fig4_12", Box::new(fig4_12)),
        ("fig4_13", Box::new(fig4_13)),
    ];
    rcube_bench::run_selected(&mut figures);
}
