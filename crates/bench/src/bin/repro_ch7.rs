//! Reproduces the Chapter 7 evaluation (Figures 7.3–7.14): skylines with
//! Boolean predicates — the signature method against Boolean-first (BNL)
//! and ranking-first baselines, plus drill-down / roll-up heap reuse.

use rcube_bench::{base_tuples, cost_ms, print_figure, synthetic, time_ms, Series};
use rcube_core::sigcube::{SignatureCube, SignatureCubeConfig};
use rcube_index::rtree::{RTree, RTreeConfig};
use rcube_skyline::bbs::skyline_ranking_first;
use rcube_skyline::bnl::boolean_first_skyline;
use rcube_skyline::{SkylineEngine, SkylineQuery};
use rcube_storage::DiskSim;
use rcube_table::gen::DataDist;
use rcube_table::Relation;

struct Ch7Setup {
    rel: Relation,
    disk: DiskSim,
    rtree: RTree,
    cube: SignatureCube,
}

fn ch7_setup_with(rel: Relation, fanout: Option<usize>) -> Ch7Setup {
    let disk = DiskSim::with_defaults();
    let dp = rel.schema().num_ranking();
    let config = match fanout {
        Some(m) => RTreeConfig::small(m),
        None => RTreeConfig::for_page(4096, dp),
    };
    let rtree = RTree::over_relation(&disk, &rel, &[], config);
    let cube = SignatureCube::build(&rel, &rtree, &disk, SignatureCubeConfig::default());
    Ch7Setup { rel, disk, rtree, cube }
}

fn ch7_setup(tuples: usize, c: u32, dp: usize, dist: DataDist, seed: u64) -> Ch7Setup {
    ch7_setup_with(synthetic(tuples, 3, c, dp, dist, seed), None)
}

fn rows_per_page(rel: &Relation) -> usize {
    (4096 / (4 * rel.schema().num_selection() + 8 * rel.schema().num_ranking() + 4)).max(1)
}

/// One measurement point: (time, disk, peak heap) per method.
fn measure(s: &Ch7Setup, q: &SkylineQuery, series: (&mut Series, &mut Series, &mut Series)) {
    let (ts, ds, hs) = series;
    s.disk.clear_buffer();
    let (res, cpu) = time_ms(|| boolean_first_skyline(&s.rel, &s.disk, q, rows_per_page(&s.rel)));
    ts.push("Boolean", cost_ms(cpu, res.stats.io));
    ds.push("Boolean", res.stats.io.disk_reads as f64);
    hs.push("Boolean", res.stats.tuples_scored as f64);
    s.disk.clear_buffer();
    let (res, cpu) = time_ms(|| skyline_ranking_first(&s.rtree, &s.rel, q, &s.disk));
    ts.push("Ranking", cost_ms(cpu, res.stats.io));
    ds.push("Ranking", res.stats.io.disk_reads as f64);
    hs.push("Ranking", res.stats.peak_heap as f64);
    s.disk.clear_buffer();
    let engine = SkylineEngine::new(&s.rtree, &s.cube);
    let (res, cpu) = time_ms(|| engine.skyline(q, &s.disk));
    ts.push("Signature", cost_ms(cpu, res.0.stats.io));
    ds.push("Signature", res.0.stats.io.disk_reads as f64);
    hs.push("Signature", res.0.stats.peak_heap as f64);
}

fn default_query() -> SkylineQuery {
    SkylineQuery::new(vec![(0, 1)], vec![0, 1])
}

fn fig7_3_4_5() {
    let base = base_tuples();
    let ts = [base / 2, base, 2 * base];
    let (mut t_s, mut d_s, mut h_s) = (Series::default(), Series::default(), Series::default());
    for &t in &ts {
        let s = ch7_setup(t, 20, 2, DataDist::Uniform, 71);
        measure(&s, &default_query(), (&mut t_s, &mut d_s, &mut h_s));
    }
    let xs = ts.map(|t| t.to_string());
    print_figure("Fig 7.3", "execution time (ms) w.r.t. T", "T", &xs, &t_s);
    print_figure("Fig 7.4", "disk accesses w.r.t. T", "T", &xs, &d_s);
    print_figure("Fig 7.5", "peak candidate heap size w.r.t. T", "T", &xs, &h_s);
}

fn fig7_6() {
    let cs = [10u32, 20, 50, 100];
    let (mut t_s, mut d_s, mut h_s) = (Series::default(), Series::default(), Series::default());
    for &c in &cs {
        let s = ch7_setup(base_tuples(), c, 2, DataDist::Uniform, 72);
        measure(&s, &default_query(), (&mut t_s, &mut d_s, &mut h_s));
    }
    print_figure("Fig 7.6", "execution time (ms) w.r.t. C", "C", &cs.map(|c| c.to_string()), &t_s);
}

fn fig7_7() {
    let dists =
        [("E", DataDist::Uniform), ("C", DataDist::Correlated), ("A", DataDist::AntiCorrelated)];
    let (mut t_s, mut d_s, mut h_s) = (Series::default(), Series::default(), Series::default());
    let mut xs = Vec::new();
    for (name, dist) in dists {
        xs.push(name.to_string());
        let s = ch7_setup(base_tuples(), 20, 2, dist, 73);
        measure(&s, &default_query(), (&mut t_s, &mut d_s, &mut h_s));
    }
    print_figure("Fig 7.7", "execution time (ms) w.r.t. distribution S", "S", &xs, &t_s);
}

fn fig7_8() {
    let dps = [2usize, 3, 4];
    let (mut t_s, mut d_s, mut h_s) = (Series::default(), Series::default(), Series::default());
    for &dp in &dps {
        let s = ch7_setup(base_tuples(), 20, dp, DataDist::Uniform, 74);
        let q = SkylineQuery::new(vec![(0, 1)], (0..dp).collect());
        measure(&s, &q, (&mut t_s, &mut d_s, &mut h_s));
    }
    print_figure(
        "Fig 7.8",
        "execution time (ms) w.r.t. preference dimensionality Dp",
        "Dp",
        &dps.map(|d| d.to_string()),
        &t_s,
    );
}

fn fig7_9() {
    // R-tree node capacity sweep (the `m/M` knob of Section 4.2.1).
    let ms = [16usize, 32, 64, 128];
    let mut series = Series::default();
    for &m in &ms {
        let s = ch7_setup_with(synthetic(base_tuples(), 3, 20, 2, DataDist::Uniform, 75), Some(m));
        let engine = SkylineEngine::new(&s.rtree, &s.cube);
        s.disk.clear_buffer();
        let (res, cpu) = time_ms(|| engine.skyline(&default_query(), &s.disk));
        series.push("Signature", cost_ms(cpu, res.0.stats.io));
    }
    print_figure(
        "Fig 7.9",
        "execution time (ms) w.r.t. node capacity M",
        "M",
        &ms.map(|m| m.to_string()),
        &series,
    );
}

fn fig7_10() {
    // Hardness: predicate selectivity shrinks as conditions stack up.
    let s = ch7_setup(base_tuples(), 4, 2, DataDist::Uniform, 76);
    let preds = [vec![(0usize, 1u32)], vec![(0, 1), (1, 2)], vec![(0, 1), (1, 2), (2, 3)]];
    let (mut t_s, mut d_s, mut h_s) = (Series::default(), Series::default(), Series::default());
    let mut xs = Vec::new();
    for conds in &preds {
        xs.push(format!("{:.3}", 0.25f64.powi(conds.len() as i32)));
        let q = SkylineQuery::new(conds.clone(), vec![0, 1]);
        measure(&s, &q, (&mut t_s, &mut d_s, &mut h_s));
    }
    print_figure(
        "Fig 7.10",
        "execution time (ms) w.r.t. hardness (selectivity)",
        "selectivity",
        &xs,
        &t_s,
    );
}

fn fig7_11() {
    // Number of Boolean predicates: signature assembly cost vs pruning.
    let s = ch7_setup(base_tuples(), 10, 2, DataDist::Uniform, 77);
    let engine = SkylineEngine::new(&s.rtree, &s.cube);
    let counts = [0usize, 1, 2, 3];
    let mut series = Series::default();
    for &n in &counts {
        let conds: Vec<(usize, u32)> = (0..n).map(|d| (d, 1u32)).collect();
        let q = SkylineQuery::new(conds, vec![0, 1]);
        s.disk.clear_buffer();
        let (res, cpu) = time_ms(|| engine.skyline(&q, &s.disk));
        series.push("Signature", cost_ms(cpu, res.0.stats.io));
        series.push("sig loads", res.0.stats.sig_loads as f64);
    }
    print_figure(
        "Fig 7.11",
        "execution time w.r.t. number of Boolean predicates",
        "#predicates",
        &counts.map(|c| c.to_string()),
        &series,
    );
}

fn fig7_12() {
    // Signature loading vs query time breakdown.
    let base = base_tuples();
    let ts = [base / 2, base, 2 * base];
    let mut series = Series::default();
    for &t in &ts {
        let s = ch7_setup(t, 20, 2, DataDist::Uniform, 78);
        let engine = SkylineEngine::new(&s.rtree, &s.cube);
        let q = SkylineQuery::new(vec![(0, 1), (1, 2)], vec![0, 1]);
        s.disk.clear_buffer();
        let (res, cpu) = time_ms(|| engine.skyline(&q, &s.disk));
        let sig_ms = res.0.stats.sig_loads as f64 * rcube_bench::READ_MS;
        series.push("signature load (ms)", sig_ms);
        series.push("total query (ms)", cost_ms(cpu, res.0.stats.io));
    }
    print_figure(
        "Fig 7.12",
        "signature loading time vs query time",
        "T",
        &ts.map(|t| t.to_string()),
        &series,
    );
}

fn fig7_13() {
    let s = ch7_setup(base_tuples(), 10, 2, DataDist::Uniform, 79);
    let engine = SkylineEngine::new(&s.rtree, &s.cube);
    let drill_dims = [1usize, 2];
    let mut series = Series::default();
    let mut xs = Vec::new();
    let base_q = SkylineQuery::new(vec![(0, 1)], vec![0, 1]);
    let (_, session) = engine.skyline(&base_q, &s.disk);
    for &d in &drill_dims {
        xs.push(format!("+A{}", d + 1));
        s.disk.clear_buffer();
        let (res, cpu) = time_ms(|| engine.drill_down(&session, d, 2, &s.disk));
        series.push("drill-down (reuse)", cost_ms(cpu, res.0.stats.io));
        let fresh_q = SkylineQuery::new(vec![(0, 1), (d, 2)], vec![0, 1]);
        s.disk.clear_buffer();
        let (res, cpu) = time_ms(|| engine.skyline(&fresh_q, &s.disk));
        series.push("new query", cost_ms(cpu, res.0.stats.io));
    }
    print_figure("Fig 7.13", "drill-down vs new query (ms)", "added pred", &xs, &series);
}

fn fig7_14() {
    let s = ch7_setup(base_tuples(), 10, 2, DataDist::Uniform, 80);
    let engine = SkylineEngine::new(&s.rtree, &s.cube);
    let mut series = Series::default();
    let mut xs = Vec::new();
    let base_q = SkylineQuery::new(vec![(0, 1), (1, 2)], vec![0, 1]);
    let (_, session) = engine.skyline(&base_q, &s.disk);
    for &d in &[1usize, 0] {
        xs.push(format!("-A{}", d + 1));
        s.disk.clear_buffer();
        let (res, cpu) = time_ms(|| engine.roll_up(&session, d, &s.disk));
        series.push("roll-up (reuse)", cost_ms(cpu, res.0.stats.io));
        let fresh_q = SkylineQuery::new(base_q.selection.roll_up(d).conds().to_vec(), vec![0, 1]);
        s.disk.clear_buffer();
        let (res, cpu) = time_ms(|| engine.skyline(&fresh_q, &s.disk));
        series.push("new query", cost_ms(cpu, res.0.stats.io));
    }
    print_figure("Fig 7.14", "roll-up vs new query (ms)", "removed pred", &xs, &series);
}

fn main() {
    let mut figures: Vec<rcube_bench::Figure> = vec![
        ("fig7_3_4_5", Box::new(fig7_3_4_5)),
        ("fig7_6", Box::new(fig7_6)),
        ("fig7_7", Box::new(fig7_7)),
        ("fig7_8", Box::new(fig7_8)),
        ("fig7_9", Box::new(fig7_9)),
        ("fig7_10", Box::new(fig7_10)),
        ("fig7_11", Box::new(fig7_11)),
        ("fig7_12", Box::new(fig7_12)),
        ("fig7_13", Box::new(fig7_13)),
        ("fig7_14", Box::new(fig7_14)),
    ];
    rcube_bench::run_selected(&mut figures);
}
