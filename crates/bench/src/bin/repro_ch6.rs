//! Reproduces the Chapter 6 evaluation (Table 6.1 trace, Figures 6.3/6.4):
//! SPJR ranked queries over multiple relations — rank join driven by
//! per-relation ranking cubes against the join-then-rank baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcube_bench::{base_tuples, cost_ms, print_figure, synthetic, time_ms, Series};
use rcube_join::{full_join_topk, optimize, JoinRelation, RankJoin, RelQuery, SpjrQuery};
use rcube_storage::DiskSim;
use rcube_table::gen::DataDist;
use rcube_table::{Relation, Selection};

fn join_relation(rel: Relation, key_card: u32, seed: u64, disk: &DiskSim) -> JoinRelation {
    let mut rng = StdRng::seed_from_u64(seed);
    let keys: Vec<u32> = (0..rel.len()).map(|_| rng.gen_range(0..key_card)).collect();
    JoinRelation::build(rel, keys, disk)
}

fn two_way_query(k: usize) -> SpjrQuery {
    SpjrQuery {
        relations: vec![
            RelQuery { selection: Selection::new(vec![(0, 1)]), weights: vec![1.0, 0.5] },
            RelQuery { selection: Selection::new(vec![(1, 2)]), weights: vec![0.8, 1.2] },
        ],
        k,
    }
}

fn table6_1() {
    // A Figure 6.2-style trace: processing a top-2 query over two tiny
    // relations, showing the rank join's pull/emit sequence.
    println!();
    println!("== Table 6.1 / Figure 6.2: top-2 query over two relations ==");
    let disk = DiskSim::with_defaults();
    let mut b1 = rcube_table::RelationBuilder::new(rcube_table::Schema::synthetic(1, 2, 2));
    for (sel, n1, n2) in
        [(0u32, 0.10, 0.20), (0, 0.30, 0.10), (1, 0.05, 0.05), (0, 0.70, 0.60), (0, 0.45, 0.50)]
    {
        b1.push(&[sel], &[n1, n2]);
    }
    let r1 = JoinRelation::build(b1.finish(), vec![1, 2, 1, 2, 1], &disk);
    let mut b2 = rcube_table::RelationBuilder::new(rcube_table::Schema::synthetic(1, 2, 2));
    for (sel, n1, n2) in [(0u32, 0.15, 0.25), (0, 0.40, 0.30), (0, 0.20, 0.10), (1, 0.90, 0.80)] {
        b2.push(&[sel], &[n1, n2]);
    }
    let r2 = JoinRelation::build(b2.finish(), vec![2, 1, 2, 1], &disk);
    let q = SpjrQuery {
        relations: vec![
            RelQuery { selection: Selection::new(vec![(0, 0)]), weights: vec![1.0, 1.0] },
            RelQuery { selection: Selection::new(vec![(0, 0)]), weights: vec![1.0, 1.0] },
        ],
        k: 2,
    };
    let rels = [&r1, &r2];
    let plan = optimize(&rels, &q);
    println!("plan: access = {:?}, pull order = {:?}", plan.access, plan.pull_order);
    let res = RankJoin::run(&rels, &q, &plan, &disk);
    for item in &res.items {
        println!(
            "result: R1.t{} ⋈ R2.t{}  (key {}, score {:.2})",
            item.tids[0],
            item.tids[1],
            r1.key_of(item.tids[0]),
            item.score
        );
    }
    println!(
        "pulled {} tuples, generated {} candidates",
        res.stats.tuples_scored, res.stats.states_generated
    );
}

fn fig6_3() {
    // Time vs join-key cardinality.
    let cards = [10u32, 50, 100, 500];
    let t = base_tuples() / 4;
    let mut series = Series::default();
    for &c in &cards {
        let disk = DiskSim::with_defaults();
        let r1 = join_relation(synthetic(t, 3, 10, 2, DataDist::Uniform, 61), c, 611, &disk);
        let r2 = join_relation(synthetic(t, 3, 10, 2, DataDist::Uniform, 62), c, 622, &disk);
        let q = two_way_query(10);
        let rels = [&r1, &r2];
        let plan = optimize(&rels, &q);
        disk.clear_buffer();
        let (res, cpu) = time_ms(|| RankJoin::run(&rels, &q, &plan, &disk));
        series.push("rank join", cost_ms(cpu, res.stats.io));
        disk.clear_buffer();
        let (res, cpu) = time_ms(|| full_join_topk(&rels, &q, &disk));
        series.push("join-then-rank", cost_ms(cpu, res.stats.io));
    }
    print_figure(
        "Fig 6.3",
        "execution time (ms) w.r.t. join-key cardinality",
        "cardinality",
        &cards.map(|c| c.to_string()),
        &series,
    );
}

fn fig6_4() {
    let base = base_tuples() / 4;
    let ts = [base / 2, base, 2 * base, 4 * base];
    let mut series = Series::default();
    for &t in &ts {
        let disk = DiskSim::with_defaults();
        let r1 = join_relation(synthetic(t, 3, 10, 2, DataDist::Uniform, 63), 100, 631, &disk);
        let r2 = join_relation(synthetic(t, 3, 10, 2, DataDist::Uniform, 64), 100, 641, &disk);
        let q = two_way_query(10);
        let rels = [&r1, &r2];
        let plan = optimize(&rels, &q);
        disk.clear_buffer();
        let (res, cpu) = time_ms(|| RankJoin::run(&rels, &q, &plan, &disk));
        series.push("rank join", cost_ms(cpu, res.stats.io));
        disk.clear_buffer();
        let (res, cpu) = time_ms(|| full_join_topk(&rels, &q, &disk));
        series.push("join-then-rank", cost_ms(cpu, res.stats.io));
    }
    print_figure(
        "Fig 6.4",
        "execution time (ms) w.r.t. database size (per relation)",
        "T",
        &ts.map(|t| t.to_string()),
        &series,
    );
}

fn main() {
    let mut figures: Vec<rcube_bench::Figure> = vec![
        ("table6_1", Box::new(table6_1)),
        ("fig6_3", Box::new(fig6_3)),
        ("fig6_4", Box::new(fig6_4)),
    ];
    rcube_bench::run_selected(&mut figures);
}
