//! Reproduces the Chapter 3 evaluation (Figures 3.4–3.15): the grid
//! ranking cube and ranking fragments against the DBMS baseline and the
//! rank-mapping approach.

use rcube_baseline::{BooleanFirst, RankMapping};
use rcube_bench::{
    base_tuples, cost_ms, print_figure, query_batch, synthetic, time_ms, Series, QUERIES_PER_POINT,
};
use rcube_core::fragments::{FragmentConfig, RankingFragments};
use rcube_core::gridcube::{CuboidSpec, GridCubeConfig, GridRankingCube};
use rcube_core::TopKQuery;
use rcube_func::Linear;
use rcube_index::BPlusTree;
use rcube_storage::DiskSim;
use rcube_table::gen::{forest_cover, DataDist};
use rcube_table::workload::QuerySpec;
use rcube_table::{Relation, Selection};

/// One measurement of the three methods over a query batch; returns
/// average milliseconds per query.
struct Setup {
    rel: Relation,
    disk: DiskSim,
    cube: GridRankingCube,
    rm: RankMapping,
    bl: BooleanFirst,
}

fn setup(rel: Relation, block: usize, cuboids: CuboidSpec) -> Setup {
    let disk = DiskSim::with_defaults();
    let cube = GridRankingCube::build(
        &rel,
        &disk,
        GridCubeConfig { block_size: block, ranking_dims: Vec::new(), cuboids },
    );
    let rm = RankMapping::build(&rel, &disk);
    let bl = BooleanFirst::build(&rel, &disk);
    Setup { rel, disk, cube, rm, bl }
}

fn default_setup(tuples: usize) -> Setup {
    setup(synthetic(tuples, 3, 20, 2, DataDist::Uniform, 11), 300, CuboidSpec::AllSubsets)
}

fn avg_times(s: &Setup, queries: &[QuerySpec]) -> (f64, f64, f64) {
    let (mut tc, mut tr, mut tb) = (0.0, 0.0, 0.0);
    for q in queries {
        let f = Linear::new(q.weights.clone());
        let query = TopKQuery::with_ranking_dims(
            q.selection.conds().to_vec(),
            f.clone(),
            q.ranking_dims.clone(),
            q.k,
        );
        s.disk.clear_buffer();
        let (res, cpu) = time_ms(|| s.cube.query(&query, &s.disk));
        tc += cost_ms(cpu, res.stats.io);
        s.disk.clear_buffer();
        let (res, cpu) =
            time_ms(|| s.rm.topk(&s.rel, &s.disk, &q.selection, &f, &q.ranking_dims, q.k));
        tr += cost_ms(cpu, res.stats.io);
        s.disk.clear_buffer();
        let (res, cpu) =
            time_ms(|| s.bl.topk(&s.rel, &s.disk, &q.selection, &f, &q.ranking_dims, q.k));
        tb += cost_ms(cpu, res.stats.io);
    }
    let n = queries.len() as f64;
    (tc / n, tr / n, tb / n)
}

fn fig3_4() {
    let s = default_setup(base_tuples());
    let ks = [5usize, 10, 15, 20];
    let mut series = Series::default();
    for &k in &ks {
        let qs = query_batch(&s.rel, 2, 2, k, 1.0, QUERIES_PER_POINT, 21);
        let (c, r, b) = avg_times(&s, &qs);
        series.push("ranking cube", c);
        series.push("rank mapping", r);
        series.push("baseline", b);
    }
    print_figure(
        "Fig 3.4",
        "query execution time (ms) w.r.t. k",
        "k",
        &ks.map(|k| k.to_string()),
        &series,
    );
}

fn fig3_5() {
    let s = default_setup(base_tuples());
    let us = [1.0, 2.0, 3.0, 4.0, 5.0];
    let mut series = Series::default();
    for &u in &us {
        let qs = query_batch(&s.rel, 2, 2, 10, u, QUERIES_PER_POINT, 22);
        let (c, r, b) = avg_times(&s, &qs);
        series.push("ranking cube", c);
        series.push("rank mapping", r);
        series.push("baseline", b);
    }
    print_figure(
        "Fig 3.5",
        "query execution time (ms) w.r.t. query skewness u",
        "u",
        &us.map(|u| format!("{u}")),
        &series,
    );
}

fn fig3_6() {
    // Data with 4 ranking dimensions; functions over r of them.
    let s = setup(
        synthetic(base_tuples(), 3, 20, 4, DataDist::Uniform, 13),
        300,
        CuboidSpec::AllSubsets,
    );
    let rs = [2usize, 3, 4];
    let mut series = Series::default();
    for &r in &rs {
        let qs = query_batch(&s.rel, 2, r, 10, 1.0, QUERIES_PER_POINT, 23);
        let (c, rm, b) = avg_times(&s, &qs);
        series.push("ranking cube", c);
        series.push("rank mapping", rm);
        series.push("baseline", b);
    }
    print_figure(
        "Fig 3.6",
        "query execution time (ms) w.r.t. r (dims in ranking function)",
        "r",
        &rs.map(|r| r.to_string()),
        &series,
    );
}

fn fig3_7() {
    let base = base_tuples();
    let ts = [base / 2, base, 2 * base, 3 * base];
    let mut series = Series::default();
    for &t in &ts {
        let s = default_setup(t);
        let qs = query_batch(&s.rel, 2, 2, 10, 1.0, QUERIES_PER_POINT, 24);
        let (c, r, b) = avg_times(&s, &qs);
        series.push("ranking cube", c);
        series.push("rank mapping", r);
        series.push("baseline", b);
    }
    print_figure(
        "Fig 3.7",
        "query execution time (ms) w.r.t. database size T",
        "T",
        &ts.map(|t| t.to_string()),
        &series,
    );
}

fn fig3_8() {
    let cs = [10u32, 20, 50, 100];
    let mut series = Series::default();
    for &c in &cs {
        let s = setup(
            synthetic(base_tuples(), 3, c, 2, DataDist::Uniform, 14),
            300,
            CuboidSpec::AllSubsets,
        );
        let qs = query_batch(&s.rel, 2, 2, 10, 1.0, QUERIES_PER_POINT, 25);
        let (cu, r, b) = avg_times(&s, &qs);
        series.push("ranking cube", cu);
        series.push("rank mapping", r);
        series.push("baseline", b);
    }
    print_figure(
        "Fig 3.8",
        "query execution time (ms) w.r.t. cardinality C",
        "C",
        &cs.map(|c| c.to_string()),
        &series,
    );
}

fn fig3_9() {
    let s = setup(
        synthetic(base_tuples(), 4, 20, 2, DataDist::Uniform, 15),
        300,
        CuboidSpec::AllSubsets,
    );
    let ss = [2usize, 3, 4];
    let mut series = Series::default();
    for &n in &ss {
        let qs = query_batch(&s.rel, n, 2, 10, 1.0, QUERIES_PER_POINT, 26);
        let (c, r, b) = avg_times(&s, &qs);
        series.push("ranking cube", c);
        series.push("rank mapping", r);
        series.push("baseline", b);
    }
    print_figure(
        "Fig 3.9",
        "query execution time (ms) w.r.t. number of selection conditions s",
        "s",
        &ss.map(|s| s.to_string()),
        &series,
    );
}

fn fig3_10() {
    let bs = [100usize, 200, 500, 1000];
    let mut series = Series::default();
    for &b in &bs {
        let s = setup(
            synthetic(base_tuples(), 3, 20, 2, DataDist::Uniform, 16),
            b,
            CuboidSpec::AllSubsets,
        );
        let qs = query_batch(&s.rel, 2, 2, 10, 1.0, QUERIES_PER_POINT, 27);
        let mut t = 0.0;
        for q in &qs {
            let query = TopKQuery::with_ranking_dims(
                q.selection.conds().to_vec(),
                Linear::new(q.weights.clone()),
                q.ranking_dims.clone(),
                q.k,
            );
            s.disk.clear_buffer();
            let (res, cpu) = time_ms(|| s.cube.query(&query, &s.disk));
            t += cost_ms(cpu, res.stats.io);
        }
        series.push("ranking cube", t / qs.len() as f64);
    }
    print_figure(
        "Fig 3.10",
        "query execution time (ms) w.r.t. base block size B",
        "B",
        &bs.map(|b| b.to_string()),
        &series,
    );
}

fn fig3_11() {
    // Space usage: fragments (F=2) vs rank-mapping composite index vs
    // baseline per-dimension B-trees.
    let dims = [3usize, 6, 9, 12];
    let t = base_tuples() / 2;
    let mut series = Series::default();
    for &s_dims in &dims {
        let rel = synthetic(t, s_dims, 20, 2, DataDist::Uniform, 17);
        let disk = DiskSim::with_defaults();
        let frags = RankingFragments::build(
            &rel,
            &disk,
            FragmentConfig { fragment_size: 2, block_size: 300 },
        );
        series.push("RF (MB)", frags.materialized_bytes() as f64 / 1e6);
        // Rank mapping: clustered composite index ≈ one copy of the data
        // per fragment-sized index set (the thesis builds one per fragment).
        let row = 4 * s_dims + 8 * 2 + 4;
        series.push("RM (MB)", (t * row * s_dims.div_ceil(2)) as f64 / 1e6 / 2.0);
        // Baseline: one B+-tree per selection dimension.
        let bt: usize = (0..s_dims)
            .map(|d| {
                BPlusTree::over_column(
                    &disk,
                    &rel.selection_column(d).iter().map(|&v| v as f64).collect::<Vec<_>>(),
                )
                .byte_size()
            })
            .sum();
        series.push("BL (MB)", (bt + t * row) as f64 / 1e6);
    }
    print_figure(
        "Fig 3.11",
        "space usage w.r.t. number of selection dimensions S (F = 2)",
        "S",
        &dims.map(|d| d.to_string()),
        &series,
    );
}

fn fig3_12() {
    let rel = synthetic(base_tuples(), 6, 5, 2, DataDist::Uniform, 18);
    let disk = DiskSim::with_defaults();
    let frags =
        RankingFragments::build(&rel, &disk, FragmentConfig { fragment_size: 2, block_size: 300 });
    // Queries intentionally covered by 1, 2 and 3 fragments.
    let selections = [
        Selection::new(vec![(0, 1), (1, 2)]),
        Selection::new(vec![(0, 1), (2, 2)]),
        Selection::new(vec![(0, 1), (2, 2), (4, 3)]),
    ];
    let mut series = Series::default();
    let mut xs = Vec::new();
    for sel in &selections {
        let n = frags.covering_fragments(sel);
        xs.push(n.to_string());
        let q = TopKQuery::new(sel.conds().to_vec(), Linear::uniform(2), 10);
        disk.clear_buffer();
        let (res, cpu) = time_ms(|| frags.query(&q, &disk));
        series.push("ranking fragments", cost_ms(cpu, res.stats.io));
    }
    print_figure(
        "Fig 3.12",
        "query execution time (ms) w.r.t. number of covering fragments",
        "#fragments",
        &xs,
        &series,
    );
}

fn fig3_13() {
    let rel = synthetic(base_tuples(), 6, 5, 2, DataDist::Uniform, 19);
    let fs = [1usize, 2, 3];
    let mut series = Series::default();
    for &f in &fs {
        let disk = DiskSim::with_defaults();
        let frags = RankingFragments::build(
            &rel,
            &disk,
            FragmentConfig { fragment_size: f, block_size: 300 },
        );
        let qs = query_batch(&rel, 3, 2, 10, 1.0, QUERIES_PER_POINT, 28);
        let mut t = 0.0;
        for q in &qs {
            let query = TopKQuery::with_ranking_dims(
                q.selection.conds().to_vec(),
                Linear::new(q.weights.clone()),
                q.ranking_dims.clone(),
                q.k,
            );
            disk.clear_buffer();
            let (res, cpu) = time_ms(|| frags.query(&query, &disk));
            t += cost_ms(cpu, res.stats.io);
        }
        series.push("ranking fragments", t / qs.len() as f64);
    }
    print_figure(
        "Fig 3.13",
        "query execution time (ms) w.r.t. fragment size F",
        "F",
        &fs.map(|f| f.to_string()),
        &series,
    );
}

fn fig3_14() {
    let dims = [3usize, 6, 9, 12];
    let mut series = Series::default();
    for &s_dims in &dims {
        let rel = synthetic(base_tuples() / 2, s_dims, 5, 2, DataDist::Uniform, 20);
        let disk = DiskSim::with_defaults();
        let frags = RankingFragments::build(
            &rel,
            &disk,
            FragmentConfig { fragment_size: 2, block_size: 300 },
        );
        let rm = RankMapping::build(&rel, &disk);
        let bl = BooleanFirst::build(&rel, &disk);
        let qs = query_batch(&rel, 3, 2, 10, 1.0, QUERIES_PER_POINT, 29);
        let (mut tf, mut tr, mut tb) = (0.0, 0.0, 0.0);
        for q in &qs {
            let f = Linear::new(q.weights.clone());
            let query = TopKQuery::with_ranking_dims(
                q.selection.conds().to_vec(),
                f.clone(),
                q.ranking_dims.clone(),
                q.k,
            );
            disk.clear_buffer();
            let (res, cpu) = time_ms(|| frags.query(&query, &disk));
            tf += cost_ms(cpu, res.stats.io);
            disk.clear_buffer();
            let (res, cpu) =
                time_ms(|| rm.topk(&rel, &disk, &q.selection, &f, &q.ranking_dims, q.k));
            tr += cost_ms(cpu, res.stats.io);
            disk.clear_buffer();
            let (res, cpu) =
                time_ms(|| bl.topk(&rel, &disk, &q.selection, &f, &q.ranking_dims, q.k));
            tb += cost_ms(cpu, res.stats.io);
        }
        let n = qs.len() as f64;
        series.push("ranking fragments", tf / n);
        series.push("rank mapping", tr / n);
        series.push("baseline", tb / n);
    }
    print_figure(
        "Fig 3.14",
        "query execution time (ms) w.r.t. S (high-dimensional)",
        "S",
        &dims.map(|d| d.to_string()),
        &series,
    );
}

fn fig3_15() {
    // Forest CoverType surrogate, fragments of size 3, 3 conditions,
    // ranking over all 3 quantitative attributes.
    let rel = forest_cover(base_tuples(), 30);
    let disk = DiskSim::with_defaults();
    let frags =
        RankingFragments::build(&rel, &disk, FragmentConfig { fragment_size: 3, block_size: 300 });
    let rm = RankMapping::build(&rel, &disk);
    let bl = BooleanFirst::build(&rel, &disk);
    let ks = [5usize, 10, 15, 20];
    let mut series = Series::default();
    for &k in &ks {
        let qs = query_batch(&rel, 3, 3, k, 1.0, QUERIES_PER_POINT, 31);
        let (mut tf, mut tr, mut tb) = (0.0, 0.0, 0.0);
        for q in &qs {
            let f = Linear::new(q.weights.clone());
            let query = TopKQuery::with_ranking_dims(
                q.selection.conds().to_vec(),
                f.clone(),
                q.ranking_dims.clone(),
                q.k,
            );
            disk.clear_buffer();
            let (res, cpu) = time_ms(|| frags.query(&query, &disk));
            tf += cost_ms(cpu, res.stats.io);
            disk.clear_buffer();
            let (res, cpu) =
                time_ms(|| rm.topk(&rel, &disk, &q.selection, &f, &q.ranking_dims, q.k));
            tr += cost_ms(cpu, res.stats.io);
            disk.clear_buffer();
            let (res, cpu) =
                time_ms(|| bl.topk(&rel, &disk, &q.selection, &f, &q.ranking_dims, q.k));
            tb += cost_ms(cpu, res.stats.io);
        }
        let n = qs.len() as f64;
        series.push("ranking fragments", tf / n);
        series.push("rank mapping", tr / n);
        series.push("baseline", tb / n);
    }
    print_figure(
        "Fig 3.15",
        "query execution time (ms) on real data (CoverType surrogate)",
        "k",
        &ks.map(|k| k.to_string()),
        &series,
    );
}

fn main() {
    let mut figures: Vec<rcube_bench::Figure> = vec![
        ("fig3_4", Box::new(fig3_4)),
        ("fig3_5", Box::new(fig3_5)),
        ("fig3_6", Box::new(fig3_6)),
        ("fig3_7", Box::new(fig3_7)),
        ("fig3_8", Box::new(fig3_8)),
        ("fig3_9", Box::new(fig3_9)),
        ("fig3_10", Box::new(fig3_10)),
        ("fig3_11", Box::new(fig3_11)),
        ("fig3_12", Box::new(fig3_12)),
        ("fig3_13", Box::new(fig3_13)),
        ("fig3_14", Box::new(fig3_14)),
        ("fig3_15", Box::new(fig3_15)),
    ];
    rcube_bench::run_selected(&mut figures);
}
