//! Reproduces the Chapter 5 evaluation (Table 5.1, Figures 5.7–5.22):
//! index-merge with progressive expansion and join-signatures, against
//! table scan and the basic merge.

use rcube_baseline::TableScan;
use rcube_bench::{base_tuples, cost_ms, print_figure, synthetic, time_ms, Series};
use rcube_func::{Constrained, GeneralSq, Linear, RankFn, SqDist};
use rcube_index::bptree::BPlusTree;
use rcube_index::rtree::{RTree, RTreeConfig};
use rcube_index::HierIndex;
use rcube_merge::{Expansion, IndexMerge, MergeAlgo, MergeConfig};
use rcube_storage::DiskSim;
use rcube_table::gen::{forest_cover, DataDist};
use rcube_table::{Relation, Selection};

const BTREE_FANOUT: usize = 64;

fn ch5_data(tuples: usize, dims: usize, seed: u64) -> Relation {
    synthetic(tuples, 3, 20, dims, DataDist::Uniform, seed)
}

fn btrees(rel: &Relation, disk: &DiskSim, fanout: usize) -> Vec<BPlusTree> {
    (0..rel.schema().num_ranking())
        .map(|d| {
            BPlusTree::bulk_load_with_fanout(
                disk,
                rel.ranking_column(d).iter().enumerate().map(|(i, &v)| (v, i as u32)).collect(),
                fanout,
            )
        })
        .collect()
}

/// The three controlled functions of Section 5.4.2 over two attributes.
fn fs2() -> SqDist {
    SqDist::new(vec![0.35, 0.65])
}
fn fg2() -> GeneralSq {
    GeneralSq::fg()
}
fn fc2() -> Constrained<Linear> {
    Constrained::new(Linear::uniform(2), 1, 0.25, 0.55)
}

struct Ch5Setup {
    rel: Relation,
    disk: DiskSim,
    trees: Vec<BPlusTree>,
    scan: TableScan,
}

fn ch5_setup(tuples: usize, dims: usize, seed: u64) -> Ch5Setup {
    let rel = ch5_data(tuples, dims, seed);
    let disk = DiskSim::with_defaults();
    let trees = btrees(&rel, &disk, BTREE_FANOUT);
    let scan = TableScan::new(&rel, &disk);
    Ch5Setup { rel, disk, trees, scan }
}

fn time_vs_k(fig: &str, title: &str, f: &dyn RankFn) {
    // Larger T than the other figures: the index-merge vs table-scan
    // crossover needs the scan to cost enough pages (the paper runs 1M+).
    let s = ch5_setup(5 * base_tuples(), 2, 51);
    let idx: Vec<&dyn HierIndex> = s.trees.iter().map(|t| t as &dyn HierIndex).collect();
    let plain = IndexMerge::new(idx.clone());
    let with_sig = IndexMerge::new(idx).with_full_signature(&s.disk);
    let ks = [10usize, 20, 50, 100];
    let mut series = Series::default();
    for &k in &ks {
        s.disk.clear_buffer();
        let (res, cpu) =
            time_ms(|| s.scan.topk(&s.rel, &s.disk, &Selection::all(), &f, &[0, 1], k));
        series.push("TS", cost_ms(cpu, res.stats.io));
        s.disk.clear_buffer();
        let (res, cpu) = time_ms(|| {
            plain.topk(
                f,
                k,
                &MergeConfig { algo: MergeAlgo::Basic, expansion: Expansion::Auto },
                &s.disk,
            )
        });
        series.push("BL", cost_ms(cpu, res.stats.io));
        s.disk.clear_buffer();
        let (res, cpu) = time_ms(|| plain.topk(f, k, &MergeConfig::default(), &s.disk));
        series.push("PE", cost_ms(cpu, res.stats.io));
        s.disk.clear_buffer();
        let (res, cpu) = time_ms(|| with_sig.topk(f, k, &MergeConfig::default(), &s.disk));
        series.push("PE+SIG", cost_ms(cpu, res.stats.io));
    }
    print_figure(fig, title, "K", &ks.map(|k| k.to_string()), &series);
}

fn table5_1() {
    // Basic vs improved on f = (A − B²)², top-100.
    let s = ch5_setup(2 * base_tuples(), 2, 50);
    let idx: Vec<&dyn HierIndex> = s.trees.iter().map(|t| t as &dyn HierIndex).collect();
    let basic = IndexMerge::new(idx.clone());
    let improved = IndexMerge::new(idx).with_full_signature(&s.disk);
    let f = fg2();
    let b = basic.topk(
        &f,
        100,
        &MergeConfig { algo: MergeAlgo::Basic, expansion: Expansion::Auto },
        &s.disk,
    );
    let i = improved.topk(&f, 100, &MergeConfig::default(), &s.disk);
    println!();
    println!("== Table 5.1: significance of the two challenges (f = (A−B²)², top-100) ==");
    println!("{:>12} {:>18} {:>14}", "Index-Merge", "States Generated", "Disk Accesses");
    println!("{:>12} {:>18} {:>14}", "Basic", b.stats.states_generated, b.stats.blocks_read);
    println!("{:>12} {:>18} {:>14}", "Improved", i.stats.states_generated, i.stats.blocks_read);
}

fn fig5_7() {
    time_vs_k("Fig 5.7", "execution time (ms) w.r.t. K, f = fs", &fs2());
}
fn fig5_8() {
    time_vs_k("Fig 5.8", "execution time (ms) w.r.t. K, f = fg", &fg2());
}
fn fig5_9() {
    time_vs_k("Fig 5.9", "execution time (ms) w.r.t. K, f = fc", &fc2());
}

fn fig5_10_11_12() {
    let s = ch5_setup(base_tuples(), 2, 52);
    let idx: Vec<&dyn HierIndex> = s.trees.iter().map(|t| t as &dyn HierIndex).collect();
    let plain = IndexMerge::new(idx.clone());
    let with_sig = IndexMerge::new(idx).with_full_signature(&s.disk);
    let functions: Vec<(&str, Box<dyn RankFn>)> =
        vec![("fs", Box::new(fs2())), ("fg", Box::new(fg2())), ("fc", Box::new(fc2()))];
    let mut disk_series = Series::default();
    let mut states_series = Series::default();
    let mut heap_series = Series::default();
    let mut xs = Vec::new();
    for (name, f) in &functions {
        xs.push(name.to_string());
        let b = plain.topk(
            f.as_ref(),
            100,
            &MergeConfig { algo: MergeAlgo::Basic, expansion: Expansion::Auto },
            &s.disk,
        );
        let p = plain.topk(f.as_ref(), 100, &MergeConfig::default(), &s.disk);
        let g = with_sig.topk(f.as_ref(), 100, &MergeConfig::default(), &s.disk);
        disk_series.push("BL", b.stats.blocks_read as f64);
        disk_series.push("PE", p.stats.blocks_read as f64);
        disk_series.push("PE+SIG(idx)", g.stats.blocks_read as f64);
        disk_series.push("PE+SIG(sig)", g.stats.sig_loads as f64);
        states_series.push("BL", b.stats.states_generated as f64);
        states_series.push("PE", p.stats.states_generated as f64);
        states_series.push("PE+SIG", g.stats.states_generated as f64);
        heap_series.push("BL", b.stats.peak_heap as f64);
        heap_series.push("PE", p.stats.peak_heap as f64);
        heap_series.push("PE+SIG", g.stats.peak_heap as f64);
    }
    print_figure("Fig 5.10", "disk accesses w.r.t. f (k = 100)", "f", &xs, &disk_series);
    print_figure("Fig 5.11", "states generated w.r.t. f (k = 100)", "f", &xs, &states_series);
    print_figure("Fig 5.12", "peak heap size w.r.t. f (k = 100)", "f", &xs, &heap_series);
}

fn fig5_13() {
    // Real data (CoverType surrogate), 3 B+-trees, fs over the 3 attrs.
    let rel = forest_cover(base_tuples(), 53);
    let disk = DiskSim::with_defaults();
    let trees = btrees(&rel, &disk, BTREE_FANOUT);
    let scan = TableScan::new(&rel, &disk);
    let idx: Vec<&dyn HierIndex> = trees.iter().map(|t| t as &dyn HierIndex).collect();
    let plain = IndexMerge::new(idx.clone());
    let with_sig = IndexMerge::new(idx).with_full_signature(&disk);
    let f = SqDist::new(vec![0.4, 0.5, 0.6]);
    let ks = [10usize, 20, 50, 100];
    let mut series = Series::default();
    for &k in &ks {
        disk.clear_buffer();
        let (res, cpu) = time_ms(|| scan.topk(&rel, &disk, &Selection::all(), &f, &[0, 1, 2], k));
        series.push("TS", cost_ms(cpu, res.stats.io));
        disk.clear_buffer();
        let (res, cpu) = time_ms(|| plain.topk(&f, k, &MergeConfig::default(), &disk));
        series.push("PE", cost_ms(cpu, res.stats.io));
        disk.clear_buffer();
        let (res, cpu) = time_ms(|| with_sig.topk(&f, k, &MergeConfig::default(), &disk));
        series.push("PE+SIG", cost_ms(cpu, res.stats.io));
    }
    print_figure(
        "Fig 5.13",
        "execution time (ms) w.r.t. K, real data",
        "K",
        &ks.map(|k| k.to_string()),
        &series,
    );
}

fn fig5_14() {
    // Two d-dimensional R-trees, fs over 2d attributes.
    let ds = [1usize, 2, 3, 4];
    let mut series = Series::default();
    for &d in &ds {
        let rel = ch5_data(base_tuples() / 2, 2 * d, 54);
        let disk = DiskSim::with_defaults();
        let dims_a: Vec<usize> = (0..d).collect();
        let dims_b: Vec<usize> = (d..2 * d).collect();
        let ra = RTree::over_relation(&disk, &rel, &dims_a, RTreeConfig::for_page(4096, d));
        let rb = RTree::over_relation(&disk, &rel, &dims_b, RTreeConfig::for_page(4096, d));
        let idx: Vec<&dyn HierIndex> = vec![&ra, &rb];
        let scan = TableScan::new(&rel, &disk);
        let merge = IndexMerge::new(idx.clone()).with_full_signature(&disk);
        let plain = IndexMerge::new(idx);
        let f = SqDist::new((0..2 * d).map(|i| 0.3 + 0.05 * i as f64).collect());
        disk.clear_buffer();
        let (res, cpu) = time_ms(|| {
            scan.topk(&rel, &disk, &Selection::all(), &f, &(0..2 * d).collect::<Vec<_>>(), 100)
        });
        series.push("TS", cost_ms(cpu, res.stats.io));
        disk.clear_buffer();
        let (res, cpu) = time_ms(|| plain.topk(&f, 100, &MergeConfig::default(), &disk));
        series.push("PE", cost_ms(cpu, res.stats.io));
        disk.clear_buffer();
        let (res, cpu) = time_ms(|| merge.topk(&f, 100, &MergeConfig::default(), &disk));
        series.push("PE+SIG", cost_ms(cpu, res.stats.io));
    }
    print_figure(
        "Fig 5.14",
        "execution time (ms) w.r.t. R-tree dimensionality",
        "d per tree",
        &ds.map(|d| d.to_string()),
        &series,
    );
}

fn fig5_15_16_17() {
    // 3-way merge: PE vs pairwise (2d) vs full (3d) signatures.
    let s = ch5_setup(base_tuples(), 3, 55);
    let idx: Vec<&dyn HierIndex> = s.trees.iter().map(|t| t as &dyn HierIndex).collect();
    let pe = IndexMerge::new(idx.clone());
    let sig2 = IndexMerge::new(idx.clone()).with_pairwise_signatures(&s.disk);
    let sig3 = IndexMerge::new(idx).with_full_signature(&s.disk);
    let f = SqDist::new(vec![0.3, 0.5, 0.7]);
    let ks = [10usize, 20, 50, 100];
    let (mut ts, mut hs, mut ds) = (Series::default(), Series::default(), Series::default());
    for &k in &ks {
        for (name, engine) in [("PE", &pe), ("PE+2dSIG", &sig2), ("PE+3dSIG", &sig3)] {
            s.disk.clear_buffer();
            let (res, cpu) = time_ms(|| engine.topk(&f, k, &MergeConfig::default(), &s.disk));
            ts.push(name, cost_ms(cpu, res.stats.io));
            hs.push(name, res.stats.peak_heap as f64);
            ds.push(name, (res.stats.blocks_read + res.stats.sig_loads) as f64);
        }
    }
    let xs = ks.map(|k| k.to_string());
    print_figure("Fig 5.15", "execution time (ms) w.r.t. K, 3 indices", "K", &xs, &ts);
    print_figure("Fig 5.16", "peak heap size w.r.t. K, 3 indices", "K", &xs, &hs);
    print_figure("Fig 5.17", "disk accesses w.r.t. K, 3 indices", "K", &xs, &ds);
}

fn fig5_18() {
    // Partial attributes: two 2-d R-trees (4 attrs), ranking on 2..4 of
    // them (unused attributes get weight 0).
    let rel = ch5_data(base_tuples() / 2, 4, 56);
    let disk = DiskSim::with_defaults();
    let ra = RTree::over_relation(&disk, &rel, &[0, 1], RTreeConfig::for_page(4096, 2));
    let rb = RTree::over_relation(&disk, &rel, &[2, 3], RTreeConfig::for_page(4096, 2));
    let idx: Vec<&dyn HierIndex> = vec![&ra, &rb];
    let merge = IndexMerge::new(idx).with_full_signature(&disk);
    let used = [2usize, 3, 4];
    let mut series = Series::default();
    for &u in &used {
        let weights: Vec<f64> = (0..4).map(|i| if i < u { 1.0 } else { 0.0 }).collect();
        let f = SqDist::weighted(vec![0.4; 4], weights);
        disk.clear_buffer();
        let (res, cpu) = time_ms(|| merge.topk(&f, 100, &MergeConfig::default(), &disk));
        series.push("PE+SIG", cost_ms(cpu, res.stats.io));
    }
    print_figure(
        "Fig 5.18",
        "execution time (ms) w.r.t. attributes used in ranking",
        "#attrs",
        &used.map(|u| u.to_string()),
        &series,
    );
}

fn fig5_19() {
    // Node size sweep: B+-tree fanout standing in for page size.
    let fanouts = [16usize, 32, 64, 128];
    let mut series = Series::default();
    for &m in &fanouts {
        let rel = ch5_data(base_tuples(), 2, 57);
        let disk = DiskSim::with_defaults();
        let trees = btrees(&rel, &disk, m);
        let idx: Vec<&dyn HierIndex> = trees.iter().map(|t| t as &dyn HierIndex).collect();
        let merge = IndexMerge::new(idx).with_full_signature(&disk);
        let f = fs2();
        disk.clear_buffer();
        let (res, cpu) = time_ms(|| merge.topk(&f, 100, &MergeConfig::default(), &disk));
        series.push("PE+SIG", cost_ms(cpu, res.stats.io));
    }
    print_figure(
        "Fig 5.19",
        "execution time (ms) w.r.t. node size (fanout)",
        "fanout",
        &fanouts.map(|m| m.to_string()),
        &series,
    );
}

fn fig5_20_21_22() {
    let base = base_tuples();
    let ts = [base / 2, base, 2 * base];
    let mut time_series = Series::default();
    let mut build_series = Series::default();
    let mut size_series = Series::default();
    for &t in &ts {
        let rel = ch5_data(t, 2, 58);
        let disk = DiskSim::with_defaults();
        let trees = btrees(&rel, &disk, BTREE_FANOUT);
        let idx: Vec<&dyn HierIndex> = trees.iter().map(|t| t as &dyn HierIndex).collect();
        let (merge, build_ms) = time_ms(|| IndexMerge::new(idx.clone()).with_full_signature(&disk));
        let f = fg2();
        disk.clear_buffer();
        let (res, cpu) = time_ms(|| merge.topk(&f, 100, &MergeConfig::default(), &disk));
        time_series.push("PE+SIG", cost_ms(cpu, res.stats.io));
        build_series.push("join-signature", build_ms);
        size_series.push("join-signature (KB)", merge.signature_bytes() as f64 / 1e3);
    }
    let xs = ts.map(|t| t.to_string());
    print_figure("Fig 5.20", "execution time (ms) w.r.t. T", "T", &xs, &time_series);
    print_figure(
        "Fig 5.21",
        "join-signature construction time (ms) w.r.t. T",
        "T",
        &xs,
        &build_series,
    );
    print_figure("Fig 5.22", "join-signature size w.r.t. T", "T", &xs, &size_series);
}

fn main() {
    let mut figures: Vec<rcube_bench::Figure> = vec![
        ("table5_1", Box::new(table5_1)),
        ("fig5_7", Box::new(fig5_7)),
        ("fig5_8", Box::new(fig5_8)),
        ("fig5_9", Box::new(fig5_9)),
        ("fig5_10_11_12", Box::new(fig5_10_11_12)),
        ("fig5_13", Box::new(fig5_13)),
        ("fig5_14", Box::new(fig5_14)),
        ("fig5_15_16_17", Box::new(fig5_15_16_17)),
        ("fig5_18", Box::new(fig5_18)),
        ("fig5_19", Box::new(fig5_19)),
        ("fig5_20_21_22", Box::new(fig5_20_21_22)),
    ];
    rcube_bench::run_selected(&mut figures);
}
