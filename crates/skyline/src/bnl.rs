//! Block-nested-loop skyline — the reference implementation and the core
//! of the Boolean-first baseline (filter by predicates, then BNL).

use rcube_core::{QueryStats, TopKResult};
use rcube_storage::DiskSim;
use rcube_table::{Relation, Tid};

use crate::dominance::{dominates, transform_point};
use crate::{SkylineQuery, SkylineResult};

/// Computes the exact skyline by a window-based nested loop over the
/// qualifying tuples. `O(n·|skyline|)`; used as ground truth and as the
/// second phase of the Boolean-first baseline.
pub fn bnl_skyline(rel: &Relation, query: &SkylineQuery) -> Vec<Tid> {
    let mut window: Vec<(Tid, Vec<f64>)> = Vec::new();
    for tid in rel.tids() {
        if !query.selection.matches(rel, tid) {
            continue;
        }
        let raw = rel.ranking_point_proj(tid, &query.pref_dims);
        let p = transform_point(&raw, query.dynamic_point.as_deref());
        if window.iter().any(|(_, w)| dominates(w, &p)) {
            continue;
        }
        window.retain(|(_, w)| !dominates(&p, w));
        window.push((tid, p));
    }
    let mut tids: Vec<Tid> = window.into_iter().map(|(t, _)| t).collect();
    tids.sort_unstable();
    tids
}

/// Boolean-first skyline baseline: sequential scan with predicate filter
/// (charged per page), then BNL over the survivors.
pub fn boolean_first_skyline(
    rel: &Relation,
    disk: &DiskSim,
    query: &SkylineQuery,
    rows_per_page: usize,
) -> SkylineResult {
    let before = disk.stats().snapshot();
    let mut stats = QueryStats::default();
    let pages = rel.len().div_ceil(rows_per_page.max(1));
    for _ in 0..pages {
        disk.read(disk.alloc_page());
        stats.blocks_read += 1;
    }
    let tids = bnl_skyline(rel, query);
    stats.tuples_scored = rel.tids().filter(|&t| query.selection.matches(rel, t)).count() as u64;
    stats.io = before.delta(&disk.stats().snapshot());
    SkylineResult { tids, stats }
}

/// Convenience: converts a skyline into the `TopKResult` shape when a test
/// wants a uniform interface.
pub fn as_result(tids: Vec<Tid>, stats: QueryStats) -> TopKResult {
    TopKResult { items: tids.into_iter().map(|t| (t, 0.0)).collect(), stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcube_table::gen::SyntheticSpec;

    #[test]
    fn skyline_members_are_mutually_incomparable() {
        let rel = SyntheticSpec { tuples: 500, ..Default::default() }.generate();
        let q = SkylineQuery::new(vec![], vec![0, 1]);
        let sky = bnl_skyline(&rel, &q);
        assert!(!sky.is_empty());
        for &a in &sky {
            for &b in &sky {
                if a != b {
                    assert!(!dominates(&rel.ranking_point(a), &rel.ranking_point(b)));
                }
            }
        }
        // Every non-member is dominated by some member.
        for t in rel.tids() {
            if !sky.contains(&t) {
                let p = rel.ranking_point(t);
                assert!(
                    sky.iter().any(|&s| dominates(&rel.ranking_point(s), &p)),
                    "tuple {t} is neither dominated nor in the skyline"
                );
            }
        }
    }

    #[test]
    fn selection_restricts_the_skyline_domain() {
        let rel = SyntheticSpec { tuples: 500, cardinality: 3, ..Default::default() }.generate();
        let q = SkylineQuery::new(vec![(0, 1)], vec![0, 1]);
        let sky = bnl_skyline(&rel, &q);
        assert!(sky.iter().all(|&t| rel.selection_value(t, 0) == 1));
    }

    #[test]
    fn dynamic_skyline_differs_from_static() {
        let rel = SyntheticSpec { tuples: 800, ..Default::default() }.generate();
        let stat = bnl_skyline(&rel, &SkylineQuery::new(vec![], vec![0, 1]));
        let dynq = SkylineQuery::dynamic(vec![], vec![0, 1], vec![0.5, 0.5]);
        let dynamic = bnl_skyline(&rel, &dynq);
        assert_ne!(stat, dynamic, "dynamic dominance should change the answer");
    }
}
