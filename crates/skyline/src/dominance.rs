//! Dominance tests and coordinate transforms.
//!
//! Static skylines minimize raw coordinates; dynamic skylines minimize
//! `|xi − qi|` (Section 7.2.3). Both reduce to the same dominance test
//! after transforming points (and node rectangles) into preference space.

use rcube_func::Rect;

/// True when `a` dominates `b`: `a ≤ b` on every dimension and `a < b` on
/// at least one (minimization).
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    let mut strict = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strict = true;
        }
    }
    strict
}

/// Transforms a raw point into preference space: identity for static
/// skylines, `|xi − qi|` for dynamic ones.
pub fn transform_point(raw: &[f64], dynamic_point: Option<&[f64]>) -> Vec<f64> {
    match dynamic_point {
        None => raw.to_vec(),
        Some(q) => raw.iter().zip(q).map(|(x, qi)| (x - qi).abs()).collect(),
    }
}

/// The minimum corner of a rectangle in preference space: the smallest
/// achievable value per dimension. Every point inside the rect is
/// dominated-or-equalled by this corner, which makes it a sound pruning
/// proxy for the whole node (Figure 7.1).
pub fn transform_rect_min(rect: &Rect, dynamic_point: Option<&[f64]>) -> Vec<f64> {
    match dynamic_point {
        None => (0..rect.dims()).map(|d| rect.lo(d)).collect(),
        Some(q) => (0..rect.dims())
            .map(|d| {
                let (lo, hi) = (rect.lo(d), rect.hi(d));
                if q[d] >= lo && q[d] <= hi {
                    0.0
                } else {
                    (lo - q[d]).abs().min((hi - q[d]).abs())
                }
            })
            .collect(),
    }
}

/// Sum of preference-space coordinates — the BBS `mindist` ordering key.
pub fn mindist(coords: &[f64]) -> f64 {
    coords.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_requires_strictness() {
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0])); // equal: no dominance
        assert!(!dominates(&[1.0, 4.0], &[2.0, 3.0])); // incomparable
        assert!(dominates(&[0.0, 0.0], &[0.1, 0.1]));
    }

    #[test]
    fn dynamic_transform_folds_around_point() {
        let q = [0.5, 0.5];
        assert_eq!(transform_point(&[0.3, 0.8], Some(&q)), vec![0.2, 0.30000000000000004]);
        assert_eq!(transform_point(&[0.3, 0.8], None), vec![0.3, 0.8]);
    }

    #[test]
    fn rect_min_corner_static_and_dynamic() {
        let r = Rect::new(vec![0.2, 0.6], vec![0.4, 0.9]);
        assert_eq!(transform_rect_min(&r, None), vec![0.2, 0.6]);
        // q inside dim 0's range → 0 there; outside dim 1's → distance.
        let q = [0.3, 0.5];
        let m = transform_rect_min(&r, Some(&q));
        assert_eq!(m[0], 0.0);
        assert!((m[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn min_corner_weakly_dominates_all_inside() {
        let r = Rect::new(vec![0.2, 0.6], vec![0.4, 0.9]);
        let q = [0.35, 0.1];
        let corner = transform_rect_min(&r, Some(&q));
        for i in 0..=4 {
            for j in 0..=4 {
                let p = [0.2 + 0.05 * i as f64, 0.6 + 0.075 * j as f64];
                let tp = transform_point(&p, Some(&q));
                assert!(corner.iter().zip(&tp).all(|(c, t)| c <= t));
            }
        }
    }
}
