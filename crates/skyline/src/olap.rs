//! OLAP navigation over skyline queries: drill-down and roll-up with
//! candidate-heap re-construction (Section 7.2.4, Figures 7.13/7.14).
//!
//! A finished query's [`SkylineSession`] retains every discarded heap entry
//! plus the accepted skyline — a frontier covering the whole data set. A
//! drill-down (adding a predicate) or roll-up (removing one) re-seeds the
//! branch-and-bound search from that frontier: regions already expanded and
//! pruned stay pruned, so the navigation query touches far fewer nodes than
//! a fresh search from the R-tree root.

use rcube_storage::DiskSim;

use crate::bbs::{SkylineEngine, SkylineSession};
use crate::{SkylineQuery, SkylineResult};

impl<'a> SkylineEngine<'a> {
    /// Drill-down: adds the predicate `dim = value` to the session's query
    /// and resumes from its frontier.
    pub fn drill_down(
        &self,
        session: &SkylineSession,
        dim: usize,
        value: u32,
        disk: &DiskSim,
    ) -> (SkylineResult, SkylineSession) {
        let q = session.query();
        let query = SkylineQuery {
            selection: q.selection.drill_down(dim, value),
            pref_dims: q.pref_dims.clone(),
            dynamic_point: q.dynamic_point.clone(),
        };
        self.resume(session, &query, disk)
    }

    /// Roll-up: removes the predicate on `dim` and resumes from the
    /// session's frontier.
    pub fn roll_up(
        &self,
        session: &SkylineSession,
        dim: usize,
        disk: &DiskSim,
    ) -> (SkylineResult, SkylineSession) {
        let q = session.query();
        let query = SkylineQuery {
            selection: q.selection.roll_up(dim),
            pref_dims: q.pref_dims.clone(),
            dynamic_point: q.dynamic_point.clone(),
        };
        self.resume(session, &query, disk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcube_core::sigcube::{SignatureCube, SignatureCubeConfig};
    use rcube_index::rtree::{RTree, RTreeConfig};
    use rcube_table::gen::SyntheticSpec;
    use rcube_table::Relation;

    fn setup(tuples: usize) -> (Relation, DiskSim, RTree, SignatureCube) {
        let rel = SyntheticSpec { tuples, cardinality: 4, ..Default::default() }.generate();
        let disk = DiskSim::with_defaults();
        let rtree = RTree::over_relation(&disk, &rel, &[], RTreeConfig::small(12));
        let cube = SignatureCube::build(&rel, &rtree, &disk, SignatureCubeConfig::default());
        (rel, disk, rtree, cube)
    }

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    #[test]
    fn drill_down_matches_fresh_query() {
        let (rel, disk, rtree, cube) = setup(1_500);
        let engine = SkylineEngine::new(&rtree, &cube);
        let base = SkylineQuery::new(vec![(0, 1)], vec![0, 1]);
        let (_, session) = engine.skyline(&base, &disk);
        let (dd, _) = engine.drill_down(&session, 1, 2, &disk);
        let fresh_q = SkylineQuery::new(vec![(0, 1), (1, 2)], vec![0, 1]);
        assert_eq!(sorted(dd.tids), crate::bnl_skyline(&rel, &fresh_q));
    }

    #[test]
    fn roll_up_matches_fresh_query() {
        let (rel, disk, rtree, cube) = setup(1_500);
        let engine = SkylineEngine::new(&rtree, &cube);
        let base = SkylineQuery::new(vec![(0, 1), (1, 2)], vec![0, 1]);
        let (_, session) = engine.skyline(&base, &disk);
        let (ru, _) = engine.roll_up(&session, 1, &disk);
        let fresh_q = SkylineQuery::new(vec![(0, 1)], vec![0, 1]);
        assert_eq!(sorted(ru.tids), crate::bnl_skyline(&rel, &fresh_q));
    }

    #[test]
    fn drill_down_reads_fewer_blocks_than_fresh() {
        let (_rel, disk, rtree, cube) = setup(4_000);
        let engine = SkylineEngine::new(&rtree, &cube);
        let base = SkylineQuery::new(vec![(0, 1)], vec![0, 1]);
        let (_, session) = engine.skyline(&base, &disk);
        let (dd, _) = engine.drill_down(&session, 1, 2, &disk);
        let fresh_q = SkylineQuery::new(vec![(0, 1), (1, 2)], vec![0, 1]);
        let (fresh, _) = engine.skyline(&fresh_q, &disk);
        assert_eq!(sorted(dd.tids.clone()), sorted(fresh.tids));
        assert!(
            dd.stats.blocks_read <= fresh.stats.blocks_read,
            "drill-down {} vs fresh {}",
            dd.stats.blocks_read,
            fresh.stats.blocks_read
        );
    }

    #[test]
    fn chained_navigation_stays_correct() {
        let (rel, disk, rtree, cube) = setup(1_000);
        let engine = SkylineEngine::new(&rtree, &cube);
        let base = SkylineQuery::new(vec![], vec![0, 1]);
        let (_, s0) = engine.skyline(&base, &disk);
        let s1 = {
            let (r, s) = engine.drill_down(&s0, 0, 1, &disk);
            let q = SkylineQuery::new(vec![(0, 1)], vec![0, 1]);
            assert_eq!(sorted(r.tids), crate::bnl_skyline(&rel, &q));
            s
        };
        let (r2, s2) = engine.drill_down(&s1, 2, 3, &disk);
        let q2 = SkylineQuery::new(vec![(0, 1), (2, 3)], vec![0, 1]);
        assert_eq!(sorted(r2.tids), crate::bnl_skyline(&rel, &q2));
        let (r3, _) = engine.roll_up(&s2, 0, &disk);
        let q3 = SkylineQuery::new(vec![(2, 3)], vec![0, 1]);
        assert_eq!(sorted(r3.tids), crate::bnl_skyline(&rel, &q3));
    }

    #[test]
    fn dynamic_navigation_supported() {
        let (rel, disk, rtree, cube) = setup(800);
        let engine = SkylineEngine::new(&rtree, &cube);
        let base = SkylineQuery::dynamic(vec![(0, 1)], vec![0, 1], vec![0.5, 0.5]);
        let (_, session) = engine.skyline(&base, &disk);
        let (dd, _) = engine.drill_down(&session, 1, 0, &disk);
        let fresh = SkylineQuery::dynamic(vec![(0, 1), (1, 0)], vec![0, 1], vec![0.5, 0.5]);
        assert_eq!(sorted(dd.tids), crate::bnl_skyline(&rel, &fresh));
    }
}
