//! Skyline and general preference queries with Boolean predicates
//! (Chapter 7).
//!
//! The ranking-cube framework generalizes beyond top-k: the same
//! branch-and-bound search over the hierarchical partition, with signature
//! Boolean pruning, answers **skyline** queries (points not dominated in
//! any preference dimension) and **dynamic skylines** (dominance measured
//! relative to a query point, Section 7.2.3). Drill-down and roll-up
//! queries reuse the previous search's candidate heap (Section 7.2.4,
//! Figure 7.2) instead of restarting from the root.

pub mod bbs;
pub mod bnl;
pub mod dominance;
pub mod olap;

pub use bbs::{SkylineEngine, SkylineSession};
pub use bnl::bnl_skyline;
pub use dominance::{dominates, transform_point, transform_rect_min};

use rcube_core::QueryStats;
use rcube_table::{Selection, Tid};

/// A skyline query: Boolean selection + preference dimensions, optionally
/// dynamic (relative to a query point).
#[derive(Debug, Clone)]
pub struct SkylineQuery {
    /// The multi-dimensional Boolean selection.
    pub selection: Selection,
    /// Relation ranking dimensions acting as preference dimensions
    /// (minimized).
    pub pref_dims: Vec<usize>,
    /// `Some(q)` for a dynamic skyline around `q` (|xi − qi| space).
    pub dynamic_point: Option<Vec<f64>>,
}

impl SkylineQuery {
    /// Static skyline over the given preference dimensions.
    pub fn new(conds: Vec<(usize, u32)>, pref_dims: Vec<usize>) -> Self {
        Self { selection: Selection::new(conds), pref_dims, dynamic_point: None }
    }

    /// Dynamic skyline around `point` (one coordinate per preference dim).
    pub fn dynamic(conds: Vec<(usize, u32)>, pref_dims: Vec<usize>, point: Vec<f64>) -> Self {
        assert_eq!(pref_dims.len(), point.len(), "query point arity mismatch");
        Self { selection: Selection::new(conds), pref_dims, dynamic_point: Some(point) }
    }
}

/// An answered skyline query.
#[derive(Debug, Clone)]
pub struct SkylineResult {
    /// Skyline tuples (ascending mindist order).
    pub tids: Vec<Tid>,
    pub stats: QueryStats,
}
