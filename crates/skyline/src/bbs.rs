//! Branch-and-bound skyline with signature Boolean pruning (Section 7.2).
//!
//! The candidate heap orders entries by `mindist` in preference space; a
//! popped entry is Boolean-checked against the signature cursors and
//! dominance-checked against the accepted skyline (a node is pruned when
//! its transformed minimum corner is dominated — Figure 7.1). Every
//! discarded entry is logged into a [`SkylineSession`] so drill-down and
//! roll-up queries can re-construct the candidate heap (Section 7.2.4)
//! instead of restarting from the root.

use std::collections::BinaryHeap;

use rcube_core::sigcube::SignatureCube;
use rcube_core::QueryStats;
use rcube_index::rtree::RTree;
use rcube_index::{HierIndex, NodeHandle};
use rcube_storage::DiskSim;
use rcube_table::{Relation, Tid};

use crate::dominance::{dominates, mindist, transform_point, transform_rect_min};
use crate::{SkylineQuery, SkylineResult};

/// A replayable heap entry.
#[derive(Debug, Clone)]
pub(crate) enum SEntry {
    /// R-tree node + its entry path.
    Node(NodeHandle, Vec<u16>),
    /// Tuple: tid, full path, transformed preference coordinates.
    Tuple(Tid, Vec<u16>, Vec<f64>),
}

#[derive(Debug)]
struct Item {
    key: f64,
    seq: u64,
    entry: SEntry,
}

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for Item {}
impl Ord for Item {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key.total_cmp(&self.key).then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The frontier left behind by a finished skyline query: everything the
/// search discarded (Boolean- or dominance-pruned) plus the accepted
/// skyline. Together these cover the whole data set, which is what makes
/// heap re-construction sound for both drill-down and roll-up.
#[derive(Debug)]
pub struct SkylineSession {
    pub(crate) pruned: Vec<(f64, SEntry)>,
    pub(crate) accepted: Vec<(f64, SEntry)>,
    pub(crate) query: SkylineQuery,
}

impl SkylineSession {
    /// The query that produced this session.
    pub fn query(&self) -> &SkylineQuery {
        &self.query
    }

    /// Number of logged (pruned) frontier entries.
    pub fn frontier_len(&self) -> usize {
        self.pruned.len()
    }
}

/// The signature-based skyline engine over an R-tree partition.
#[derive(Debug)]
pub struct SkylineEngine<'a> {
    rtree: &'a RTree,
    cube: &'a SignatureCube,
}

impl<'a> SkylineEngine<'a> {
    pub fn new(rtree: &'a RTree, cube: &'a SignatureCube) -> Self {
        Self { rtree, cube }
    }

    /// Answers a skyline query from scratch.
    pub fn skyline(&self, query: &SkylineQuery, disk: &DiskSim) -> (SkylineResult, SkylineSession) {
        let root = self.rtree.root();
        let root_key = mindist(&transform_rect_min(
            &self.rtree.region(root).project(&query.pref_dims),
            query.dynamic_point.as_deref(),
        ));
        self.run(query, vec![(root_key, SEntry::Node(root, Vec::new()))], disk)
    }

    /// Resumes from a previous session's frontier with a modified Boolean
    /// selection (drill-down / roll-up). Preference dimensions and the
    /// dynamic point must match the original query.
    pub fn resume(
        &self,
        session: &SkylineSession,
        query: &SkylineQuery,
        disk: &DiskSim,
    ) -> (SkylineResult, SkylineSession) {
        assert_eq!(session.query.pref_dims, query.pref_dims, "preference dims must match");
        assert_eq!(session.query.dynamic_point, query.dynamic_point, "dynamic point must match");
        let mut seeds = session.pruned.clone();
        seeds.extend(session.accepted.iter().cloned());
        self.run(query, seeds, disk)
    }

    fn run(
        &self,
        query: &SkylineQuery,
        seeds: Vec<(f64, SEntry)>,
        disk: &DiskSim,
    ) -> (SkylineResult, SkylineSession) {
        let before = disk.stats().snapshot();
        let mut stats = QueryStats::default();
        let dynp = query.dynamic_point.as_deref();

        let mut session =
            SkylineSession { pruned: Vec::new(), accepted: Vec::new(), query: query.clone() };

        let Some(mut pruner) = self.cube.pruner_for(&query.selection, disk) else {
            // Some predicate selects an empty cell: no answers; keep the
            // seeds so a later roll-up can still resume.
            session.pruned = seeds;
            stats.io = before.delta(&disk.stats().snapshot());
            return (SkylineResult { tids: Vec::new(), stats }, session);
        };

        let mut heap: BinaryHeap<Item> = BinaryHeap::new();
        let mut seq = 0u64;
        for (key, entry) in seeds {
            seq += 1;
            heap.push(Item { key, seq, entry });
        }
        let mut skyline: Vec<(Tid, Vec<f64>)> = Vec::new();

        while let Some(Item { key, entry, .. }) = heap.pop() {
            // Boolean pruning.
            let path = match &entry {
                SEntry::Node(_, p) => p,
                SEntry::Tuple(_, p, _) => p,
            };
            if !path.is_empty() && !pruner.check_path(path) {
                session.pruned.push((key, entry));
                continue;
            }
            match entry {
                SEntry::Tuple(tid, path, coords) => {
                    if skyline.iter().any(|(_, s)| dominates(s, &coords)) {
                        session.pruned.push((key, SEntry::Tuple(tid, path, coords)));
                        continue;
                    }
                    skyline.push((tid, coords.clone()));
                    session.accepted.push((key, SEntry::Tuple(tid, path, coords)));
                    stats.tuples_scored += 1;
                }
                SEntry::Node(n, path) => {
                    // Dominance pruning on the transformed min corner.
                    let corner =
                        transform_rect_min(&self.rtree.region(n).project(&query.pref_dims), dynp);
                    if skyline.iter().any(|(_, s)| dominates(s, &corner)) {
                        session.pruned.push((key, SEntry::Node(n, path)));
                        continue;
                    }
                    self.rtree.read_node(disk, n);
                    stats.blocks_read += 1;
                    if self.rtree.is_leaf(n) {
                        for (slot, (tid, point)) in
                            self.rtree.leaf_entries(n).into_iter().enumerate()
                        {
                            let raw: Vec<f64> = query.pref_dims.iter().map(|&d| point[d]).collect();
                            let coords = transform_point(&raw, dynp);
                            let mut tpath = path.clone();
                            tpath.push(slot as u16);
                            seq += 1;
                            heap.push(Item {
                                key: mindist(&coords),
                                seq,
                                entry: SEntry::Tuple(tid, tpath, coords),
                            });
                            stats.states_generated += 1;
                        }
                    } else {
                        for (pos, child) in self.rtree.children(n).into_iter().enumerate() {
                            let ccorner = transform_rect_min(
                                &self.rtree.region(child).project(&query.pref_dims),
                                dynp,
                            );
                            let mut cpath = path.clone();
                            cpath.push(pos as u16);
                            seq += 1;
                            heap.push(Item {
                                key: mindist(&ccorner),
                                seq,
                                entry: SEntry::Node(child, cpath),
                            });
                            stats.states_generated += 1;
                        }
                    }
                }
            }
            stats.peak_heap = stats.peak_heap.max(heap.len() as u64);
        }

        stats.sig_loads = pruner.loads();
        stats.sig_bytes_decoded = pruner.bytes_decoded();
        stats.io = before.delta(&disk.stats().snapshot());
        let tids = skyline.into_iter().map(|(t, _)| t).collect();
        (SkylineResult { tids, stats }, session)
    }
}

/// Ranking-first skyline baseline: BBS without Boolean pruning; popped
/// tuples are verified against the predicates by random access.
pub fn skyline_ranking_first(
    rtree: &RTree,
    rel: &Relation,
    query: &SkylineQuery,
    disk: &DiskSim,
) -> SkylineResult {
    let before = disk.stats().snapshot();
    let mut stats = QueryStats::default();
    let dynp = query.dynamic_point.as_deref();
    let mut heap: BinaryHeap<Item> = BinaryHeap::new();
    let root = rtree.root();
    let mut seq = 0u64;
    heap.push(Item {
        key: mindist(&transform_rect_min(&rtree.region(root).project(&query.pref_dims), dynp)),
        seq,
        entry: SEntry::Node(root, Vec::new()),
    });
    let mut skyline: Vec<(Tid, Vec<f64>)> = Vec::new();

    while let Some(Item { entry, .. }) = heap.pop() {
        match entry {
            SEntry::Tuple(tid, _, coords) => {
                if skyline.iter().any(|(_, s)| dominates(s, &coords)) {
                    continue;
                }
                disk.random_access();
                if query.selection.matches(rel, tid) {
                    skyline.push((tid, coords));
                    stats.tuples_scored += 1;
                }
            }
            SEntry::Node(n, path) => {
                let corner = transform_rect_min(&rtree.region(n).project(&query.pref_dims), dynp);
                if skyline.iter().any(|(_, s)| dominates(s, &corner)) {
                    continue;
                }
                rtree.read_node(disk, n);
                stats.blocks_read += 1;
                if rtree.is_leaf(n) {
                    for (tid, point) in rtree.leaf_entries(n) {
                        let raw: Vec<f64> = query.pref_dims.iter().map(|&d| point[d]).collect();
                        let coords = transform_point(&raw, dynp);
                        seq += 1;
                        heap.push(Item {
                            key: mindist(&coords),
                            seq,
                            entry: SEntry::Tuple(tid, Vec::new(), coords),
                        });
                    }
                } else {
                    for child in rtree.children(n) {
                        let c = transform_rect_min(
                            &rtree.region(child).project(&query.pref_dims),
                            dynp,
                        );
                        seq += 1;
                        heap.push(Item {
                            key: mindist(&c),
                            seq,
                            entry: SEntry::Node(child, path.clone()),
                        });
                    }
                }
            }
        }
        stats.peak_heap = stats.peak_heap.max(heap.len() as u64);
    }
    stats.io = before.delta(&disk.stats().snapshot());
    let tids = skyline.into_iter().map(|(t, _)| t).collect();
    SkylineResult { tids, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcube_core::sigcube::SignatureCubeConfig;
    use rcube_index::rtree::RTreeConfig;
    use rcube_table::gen::SyntheticSpec;

    fn setup(tuples: usize) -> (Relation, DiskSim, RTree, SignatureCube) {
        let rel = SyntheticSpec { tuples, cardinality: 4, ..Default::default() }.generate();
        let disk = DiskSim::with_defaults();
        let rtree = RTree::over_relation(&disk, &rel, &[], RTreeConfig::small(12));
        let cube = SignatureCube::build(&rel, &rtree, &disk, SignatureCubeConfig::default());
        (rel, disk, rtree, cube)
    }

    fn sorted(mut v: Vec<Tid>) -> Vec<Tid> {
        v.sort_unstable();
        v
    }

    #[test]
    fn signature_skyline_matches_bnl() {
        let (rel, disk, rtree, cube) = setup(1_200);
        let engine = SkylineEngine::new(&rtree, &cube);
        for conds in [vec![], vec![(0usize, 1u32)], vec![(0, 2), (1, 3)]] {
            let q = SkylineQuery::new(conds, vec![0, 1]);
            let (res, _) = engine.skyline(&q, &disk);
            assert_eq!(sorted(res.tids), crate::bnl_skyline(&rel, &q), "query {:?}", q.selection);
        }
    }

    #[test]
    fn dynamic_skyline_matches_bnl() {
        let (rel, disk, rtree, cube) = setup(1_000);
        let engine = SkylineEngine::new(&rtree, &cube);
        let q = SkylineQuery::dynamic(vec![(1, 1)], vec![0, 1], vec![0.4, 0.6]);
        let (res, _) = engine.skyline(&q, &disk);
        assert_eq!(sorted(res.tids), crate::bnl_skyline(&rel, &q));
    }

    #[test]
    fn ranking_first_matches_bnl() {
        let (rel, disk, rtree, _) = setup(900);
        let q = SkylineQuery::new(vec![(0, 1)], vec![0, 1]);
        let res = skyline_ranking_first(&rtree, &rel, &q, &disk);
        assert_eq!(sorted(res.tids), crate::bnl_skyline(&rel, &q));
        assert!(res.stats.io.random_accesses > 0);
    }

    #[test]
    fn signature_reads_fewer_blocks_than_ranking_first() {
        let (rel, disk, rtree, cube) = setup(3_000);
        let engine = SkylineEngine::new(&rtree, &cube);
        let q = SkylineQuery::new(vec![(0, 1), (1, 2)], vec![0, 1]);
        let (sig, _) = engine.skyline(&q, &disk);
        let rf = skyline_ranking_first(&rtree, &rel, &q, &disk);
        assert_eq!(sorted(sig.tids.clone()), sorted(rf.tids));
        assert!(
            sig.stats.blocks_read <= rf.stats.blocks_read,
            "signature {} vs ranking-first {}",
            sig.stats.blocks_read,
            rf.stats.blocks_read
        );
    }

    #[test]
    fn empty_cell_yields_empty_skyline_with_resumable_session() {
        let (_rel, disk, rtree, cube) = setup(300);
        let engine = SkylineEngine::new(&rtree, &cube);
        let q = SkylineQuery::new(vec![(0, 99)], vec![0, 1]);
        let (res, session) = engine.skyline(&q, &disk);
        assert!(res.tids.is_empty());
        assert!(session.frontier_len() > 0, "session must keep the seeds");
    }
}
