//! Per-query structured tracing: a bounded ring buffer of ordered
//! [`TraceEvent`]s with monotonic timestamps, fed by a lightweight span
//! API (`trace.span("grid.pull").record("blocks", 2.0)`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One recorded event: a point (or closed span) on the query timeline.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Emission order, dense from 0 (survives ring-buffer eviction: the
    /// sequence keeps counting even when old events are dropped).
    pub seq: u64,
    /// Microseconds since the trace started (monotonic clock).
    pub at_us: u64,
    /// Span duration in microseconds; `None` for instantaneous events.
    pub dur_us: Option<u64>,
    /// Event name, dotted (`"cursor.next"`, `"engine.open"`, …).
    pub name: &'static str,
    /// Numeric payload — typically counter deltas since the previous
    /// event, so summing a field over a trace reconciles with the final
    /// `QueryStats`.
    pub fields: Vec<(&'static str, f64)>,
}

/// A bounded ring buffer of [`TraceEvent`]s for one query. Cheap to
/// share behind an `Arc`; recording takes one short mutex hold (traces
/// are per-query, so the lock is effectively uncontended).
#[derive(Debug)]
pub struct QueryTrace {
    start: Instant,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    events: Mutex<VecDeque<TraceEvent>>,
}

impl QueryTrace {
    /// A trace retaining at most `capacity` events (older events are
    /// evicted first; [`Self::dropped`] counts the evictions).
    pub fn new(capacity: usize) -> Self {
        Self {
            start: Instant::now(),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// Opens a span: the returned guard records one event (with
    /// duration) when finished or dropped. Chain [`Span::record`] to
    /// attach fields.
    pub fn span<'t>(&'t self, name: &'static str) -> Span<'t> {
        Span { trace: self, name, began: Instant::now(), fields: Vec::new() }
    }

    /// Records an instantaneous event.
    pub fn event(&self, name: &'static str, fields: &[(&'static str, f64)]) {
        self.push(name, None, fields.to_vec());
    }

    fn push(&self, name: &'static str, dur_us: Option<u64>, fields: Vec<(&'static str, f64)>) {
        let at_us = self.start.elapsed().as_micros() as u64;
        let mut events = self.events.lock().unwrap();
        // Seq is assigned under the lock so event order and seq order agree.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if events.len() >= self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(TraceEvent { seq, at_us, dur_us, name, fields });
    }

    /// The retained events, in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().iter().cloned().collect()
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Renders the retained events as JSON lines (one event per line).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for e in self.events.lock().unwrap().iter() {
            out.push_str(&format!(
                "{{\"seq\":{},\"at_us\":{},\"name\":\"{}\"",
                e.seq, e.at_us, e.name
            ));
            if let Some(d) = e.dur_us {
                out.push_str(&format!(",\"dur_us\":{d}"));
            }
            if !e.fields.is_empty() {
                out.push_str(",\"fields\":{");
                for (i, (k, v)) in e.fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{k}\":{v}"));
                }
                out.push('}');
            }
            out.push_str("}\n");
        }
        out
    }
}

/// An open span ([`QueryTrace::span`]): records its event, with
/// duration, when [`Span::finish`]ed or dropped.
#[derive(Debug)]
pub struct Span<'t> {
    trace: &'t QueryTrace,
    name: &'static str,
    began: Instant,
    fields: Vec<(&'static str, f64)>,
}

impl Span<'_> {
    /// Attaches a numeric field (builder-style).
    pub fn record(mut self, key: &'static str, value: f64) -> Self {
        self.fields.push((key, value));
        self
    }

    /// Closes the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let dur = self.began.elapsed().as_micros() as u64;
        self.trace.push(self.name, Some(dur), std::mem::take(&mut self.fields));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_ordered_and_timestamped() {
        let t = QueryTrace::new(16);
        t.event("open", &[("k", 10.0)]);
        t.span("pull").record("blocks", 2.0).finish();
        t.event("done", &[]);
        let events = t.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(events.windows(2).all(|w| w[0].at_us <= w[1].at_us), "monotonic timestamps");
        assert_eq!(events[1].name, "pull");
        assert!(events[1].dur_us.is_some());
        assert_eq!(events[1].fields, vec![("blocks", 2.0)]);
    }

    #[test]
    fn ring_buffer_is_bounded_and_counts_drops() {
        let t = QueryTrace::new(4);
        for _ in 0..10 {
            t.event("e", &[]);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        // The retained window is the most recent events.
        assert_eq!(t.events().first().unwrap().seq, 6);
    }

    #[test]
    fn json_lines_one_event_per_line() {
        let t = QueryTrace::new(8);
        t.event("a", &[("x", 1.5)]);
        t.span("b").finish();
        let jl = t.to_json_lines();
        assert_eq!(jl.lines().count(), 2);
        assert!(jl.lines().next().unwrap().contains("\"name\":\"a\""), "{jl}");
        assert!(jl.lines().next().unwrap().contains("\"x\":1.5"), "{jl}");
        assert!(jl.lines().nth(1).unwrap().contains("\"dur_us\""), "{jl}");
    }
}
