//! The metrics registry: named counters, gauges and log₂-bucketed
//! histograms behind cheap pre-resolved handles (crate docs for the
//! locking discipline).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of log₂ buckets per histogram. Bucket `i > 0` holds recorded
/// values whose bit length is `i`, i.e. the half-open magnitude range
/// `[2^(i-1), 2^i)`; bucket 0 holds exactly the value 0; the last bucket
/// absorbs everything too large to classify.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Bucket index for a recorded value (see [`HISTOGRAM_BUCKETS`]).
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` — the `le` label in the
/// Prometheus exposition.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[derive(Debug)]
struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCell {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCell>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Default)]
struct Registry {
    instruments: Mutex<BTreeMap<String, Instrument>>,
}

impl Registry {
    /// Resolves (or creates) the named instrument. Panics if `name` is
    /// already registered as a different kind — a programmer error that
    /// would otherwise silently split one series in two.
    fn resolve(&self, name: &str, make: impl FnOnce() -> Instrument) -> Instrument {
        let mut map = self.instruments.lock().unwrap();
        let inst = map.entry(name.to_string()).or_insert_with(make).clone();
        drop(map);
        inst
    }
}

/// A handle on one registry (or on nothing): `Arc`-cheap to clone, all
/// methods `&self`. See the crate docs for the enabled/disabled cost
/// model.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    registry: Option<Arc<Registry>>,
}

impl Metrics {
    /// A fresh, enabled registry (e.g. one per `Engine`).
    pub fn new() -> Self {
        Self { registry: Some(Arc::new(Registry::default())) }
    }

    /// The null registry: every handle minted from it is a no-op and
    /// records through one predictable branch — no atomics, no locks.
    pub fn disabled() -> Self {
        Self { registry: None }
    }

    /// The process-wide default registry (created on first use). Static
    /// call sites with no engine in reach (e.g. `scrub_path`) record
    /// here.
    pub fn global() -> &'static Metrics {
        static GLOBAL: OnceLock<Metrics> = OnceLock::new();
        GLOBAL.get_or_init(Metrics::new)
    }

    /// Whether handles minted from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// Resolves the named monotonic counter (registering it on first
    /// use). Resolve once, record forever: the registry lock is paid
    /// here, never in [`Counter::inc`].
    pub fn counter(&self, name: &str) -> Counter {
        match &self.registry {
            None => Counter(None),
            Some(r) => match r.resolve(name, || Instrument::Counter(Arc::new(AtomicU64::new(0)))) {
                Instrument::Counter(c) => Counter(Some(c)),
                other => panic!("metric {name:?} already registered as a {}", other.kind()),
            },
        }
    }

    /// Resolves the named gauge (a settable `u64`, e.g. a generation).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.registry {
            None => Gauge(None),
            Some(r) => match r.resolve(name, || Instrument::Gauge(Arc::new(AtomicU64::new(0)))) {
                Instrument::Gauge(g) => Gauge(Some(g)),
                other => panic!("metric {name:?} already registered as a {}", other.kind()),
            },
        }
    }

    /// Resolves the named log₂-bucketed histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.registry {
            None => Histogram(None),
            Some(r) => {
                match r.resolve(name, || Instrument::Histogram(Arc::new(HistogramCell::new()))) {
                    Instrument::Histogram(h) => Histogram(Some(h)),
                    other => panic!("metric {name:?} already registered as a {}", other.kind()),
                }
            }
        }
    }

    /// A point-in-time copy of every registered instrument, sorted by
    /// name. Concurrent recording keeps running; each atomic is read
    /// once, so a counter observed across two snapshots is monotonic.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let Some(r) = &self.registry else { return snap };
        let map = r.instruments.lock().unwrap();
        for (name, inst) in map.iter() {
            match inst {
                Instrument::Counter(c) => {
                    snap.counters.push((name.clone(), c.load(Ordering::Relaxed)))
                }
                Instrument::Gauge(g) => snap.gauges.push((name.clone(), g.load(Ordering::Relaxed))),
                Instrument::Histogram(h) => {
                    let buckets: Vec<u64> =
                        h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
                    snap.histograms.push((
                        name.clone(),
                        HistogramSnapshot {
                            buckets,
                            count: h.count.load(Ordering::Relaxed),
                            sum: h.sum.load(Ordering::Relaxed),
                        },
                    ));
                }
            }
        }
        snap
    }
}

/// A monotonic counter handle. `Default` (and any handle minted from
/// [`Metrics::disabled`]) is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1)
    }

    /// Adds `n` (relaxed; one atomic when enabled, one branch when not).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A settable gauge handle (last write wins).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Adds to the gauge.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(g) = &self.0 {
            g.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// A log₂-bucketed histogram handle (units are the caller's — the
/// workspace records microseconds for latencies, raw counts otherwise).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCell>>);

impl Histogram {
    /// Records one observation (three relaxed atomics when enabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(value, Ordering::Relaxed);
        }
    }

    /// Observations recorded so far (0 when disabled).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.count.load(Ordering::Relaxed))
    }

    /// Sum of recorded values (0 when disabled).
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.sum.load(Ordering::Relaxed))
    }
}

/// One histogram at snapshot time: per-bucket counts (non-cumulative,
/// indexed as [`HISTOGRAM_BUCKETS`] describes), total count and sum.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Non-cumulative per-bucket observation counts.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the smallest bucket whose cumulative count reaches
    /// quantile `q` of all observations — a ≤2× overestimate by
    /// construction of the log₂ buckets. `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return bucket_upper(i);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }
}

/// A sorted point-in-time copy of a registry ([`Metrics::snapshot`]).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` per histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of the named counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Value of the named gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The named histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Dots and dashes in metric names become underscores; histograms
    /// render as the conventional cumulative `_bucket{le="…"}` series
    /// plus `_sum` / `_count`.
    pub fn to_prometheus_text(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cumulative = 0u64;
            for (i, &b) in h.buckets.iter().enumerate() {
                if b == 0 {
                    continue;
                }
                cumulative += b;
                out.push_str(&format!("{n}_bucket{{le=\"{}\"}} {cumulative}\n", bucket_upper(i)));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        out
    }

    /// Renders the snapshot as one JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}` with
    /// histogram buckets as `[upper_bound, count]` pairs (zero buckets
    /// omitted).
    pub fn to_json(&self) -> String {
        fn escape(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", escape(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", escape(name)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
                escape(name),
                h.count,
                h.sum
            ));
            let mut first = true;
            for (bi, &b) in h.buckets.iter().enumerate() {
                if b == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("[{},{b}]", bucket_upper(bi)));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_bucketing_covers_the_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Every bucket's values fall at or below its upper bound.
        for v in [0u64, 1, 2, 3, 7, 8, 1 << 20, u64::MAX] {
            assert!(v <= bucket_upper(bucket_index(v)), "v={v}");
        }
    }

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let m = Metrics::new();
        let c = m.counter("pool.hits");
        c.inc();
        c.add(4);
        m.gauge("gen").set(7);
        let h = m.histogram("lat.us");
        for v in [0u64, 1, 5, 5, 300] {
            h.record(v);
        }
        let snap = m.snapshot();
        assert_eq!(snap.counter("pool.hits"), Some(5));
        assert_eq!(snap.gauge("gen"), Some(7));
        let hs = snap.histogram("lat.us").unwrap();
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 311);
        assert_eq!(hs.buckets.iter().sum::<u64>(), 5);
        assert!(hs.quantile(0.5) >= 5);
        // Re-resolving the same name returns the same underlying cell.
        m.counter("pool.hits").add(1);
        assert_eq!(m.snapshot().counter("pool.hits"), Some(6));
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let m = Metrics::disabled();
        assert!(!m.is_enabled());
        let c = m.counter("x");
        c.add(100);
        assert_eq!(c.get(), 0);
        let h = m.histogram("y");
        h.record(9);
        assert_eq!(h.count(), 0);
        let snap = m.snapshot();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let m = Metrics::new();
        m.counter("x");
        m.gauge("x");
    }

    #[test]
    fn exports_render_every_series() {
        let m = Metrics::new();
        m.counter("a.b").add(3);
        m.gauge("g").set(2);
        m.histogram("h").record(6);
        let snap = m.snapshot();
        let prom = snap.to_prometheus_text();
        assert!(prom.contains("# TYPE a_b counter"), "{prom}");
        assert!(prom.contains("a_b 3"), "{prom}");
        assert!(prom.contains("h_bucket{le=\"7\"} 1"), "{prom}");
        assert!(prom.contains("h_bucket{le=\"+Inf\"} 1"), "{prom}");
        let json = snap.to_json();
        assert!(json.contains("\"a.b\":3"), "{json}");
        assert!(json.contains("\"h\":{\"count\":1,\"sum\":6,\"buckets\":[[7,1]]}"), "{json}");
    }
}
