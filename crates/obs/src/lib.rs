//! Zero-dependency observability for the ranking-cube workspace: a
//! lock-free [`Metrics`] registry (counters, gauges, log₂-bucketed
//! histograms) and a per-query [`QueryTrace`] ring buffer with a span API.
//!
//! # Design
//!
//! * **Free when disabled.** Every instrument handle is an
//!   `Option<Arc<Atomic…>>`: a handle minted from [`Metrics::disabled`]
//!   is `None`, so the hot-path cost of an un-instrumented component is
//!   one predictable branch — no atomics, no locks, no allocation.
//! * **Lock-free when enabled.** Recording is a relaxed atomic add on a
//!   pre-resolved handle. The registry's mutex is touched only at
//!   registration ([`Metrics::counter`] et al.) and snapshot time, never
//!   on a read/record path. Components resolve their handles once
//!   (`OnceLock`) and reuse them forever.
//! * **Cheap handles.** [`Metrics`] is a thin `Arc` — clone it freely
//!   into every component. A process-wide default lives behind
//!   [`Metrics::global`]; each `Engine` owns its own registry so two
//!   engines in one process never mix counters.
//!
//! # Exports
//!
//! [`Metrics::snapshot`] produces a [`MetricsSnapshot`] that renders as
//! Prometheus exposition text ([`MetricsSnapshot::to_prometheus_text`])
//! or a single JSON object ([`MetricsSnapshot::to_json`]).
//! [`QueryTrace::to_json_lines`] renders a trace as JSON lines, one
//! event per line, in emission order.

mod metrics;
mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Metrics, MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use trace::{QueryTrace, Span, TraceEvent};
