//! Sequential table scan (`TS`).

use rcube_core::{QueryStats, TopKHeap, TopKResult};
use rcube_func::RankFn;
use rcube_storage::DiskSim;
use rcube_table::{Relation, Selection};

use crate::rows_per_page;

/// Full-scan evaluation: reads every page, filters, ranks in a k-heap.
#[derive(Debug)]
pub struct TableScan {
    pages: Vec<rcube_storage::PageId>,
    rows_per_page: usize,
}

impl TableScan {
    /// Lays the relation out on consecutive pages.
    pub fn new(rel: &Relation, disk: &DiskSim) -> Self {
        let rpp = rows_per_page(rel, disk.page_size());
        let pages = disk.alloc_pages(rel.len().div_ceil(rpp).max(1));
        for &p in &pages {
            disk.write(p);
        }
        Self { pages, rows_per_page: rpp }
    }

    /// Top-k by scanning every page.
    pub fn topk<F: RankFn>(
        &self,
        rel: &Relation,
        disk: &DiskSim,
        selection: &Selection,
        func: &F,
        ranking_dims: &[usize],
        k: usize,
    ) -> TopKResult {
        let before = disk.stats().snapshot();
        let mut stats = QueryStats::default();
        let mut heap = TopKHeap::new(k);
        for (pi, &page) in self.pages.iter().enumerate() {
            disk.read(page);
            stats.blocks_read += 1;
            let start = pi * self.rows_per_page;
            let end = ((pi + 1) * self.rows_per_page).min(rel.len());
            for tid in start as u32..end as u32 {
                if !selection.matches(rel, tid) {
                    continue;
                }
                let score = func.score(&rel.ranking_point_proj(tid, ranking_dims));
                heap.offer(tid, score);
                stats.tuples_scored += 1;
            }
        }
        stats.io = before.delta(&disk.stats().snapshot());
        TopKResult { items: heap.into_sorted(), stats }
    }

    /// Number of data pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcube_func::Linear;
    use rcube_table::gen::SyntheticSpec;

    #[test]
    fn scan_finds_exact_topk() {
        let rel = SyntheticSpec { tuples: 1_000, ..Default::default() }.generate();
        let disk = DiskSim::with_defaults();
        let ts = TableScan::new(&rel, &disk);
        let sel = Selection::new(vec![(0, 1)]);
        let res = ts.topk(&rel, &disk, &sel, &Linear::uniform(2), &[0, 1], 5);
        let mut want: Vec<f64> = rel
            .tids()
            .filter(|&t| sel.matches(&rel, t))
            .map(|t| rel.ranking_value(t, 0) + rel.ranking_value(t, 1))
            .collect();
        want.sort_by(f64::total_cmp);
        want.truncate(5);
        assert_eq!(res.scores().len(), want.len());
        for (g, w) in res.scores().iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn scan_reads_every_page_regardless_of_k() {
        let rel = SyntheticSpec { tuples: 5_000, ..Default::default() }.generate();
        let disk = DiskSim::with_defaults();
        let ts = TableScan::new(&rel, &disk);
        let r1 = ts.topk(&rel, &disk, &Selection::all(), &Linear::uniform(2), &[0, 1], 1);
        let r2 = ts.topk(&rel, &disk, &Selection::all(), &Linear::uniform(2), &[0, 1], 100);
        assert_eq!(r1.stats.blocks_read, r2.stats.blocks_read);
        assert_eq!(r1.stats.blocks_read as usize, ts.num_pages());
    }
}
