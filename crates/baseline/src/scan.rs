//! Sequential table scan (`TS`).

use rcube_core::query::{QueryPlan, RankedSource, SortedDrain, TopKCursor};
use rcube_core::{QueryStats, TopKResult};
use rcube_func::RankFn;
use rcube_storage::{DiskSim, StorageError};
use rcube_table::{Relation, Selection};

use crate::rows_per_page;

/// Full-scan evaluation: reads every page, filters, ranks in a k-heap.
#[derive(Debug)]
pub struct TableScan {
    pages: Vec<rcube_storage::PageId>,
    rows_per_page: usize,
}

impl TableScan {
    /// Lays the relation out on consecutive pages.
    pub fn new(rel: &Relation, disk: &DiskSim) -> Self {
        let rpp = rows_per_page(rel, disk.page_size());
        let pages = disk.alloc_pages(rel.len().div_ceil(rpp).max(1));
        for &p in &pages {
            disk.write(p);
        }
        Self { pages, rows_per_page: rpp }
    }

    /// Top-k by scanning every page — a thin batch wrapper over
    /// [`Self::source`].
    pub fn topk<F: RankFn>(
        &self,
        rel: &Relation,
        disk: &DiskSim,
        selection: &Selection,
        func: &F,
        ranking_dims: &[usize],
        k: usize,
    ) -> TopKResult {
        let plan = QueryPlan { selection, func, ranking_dims, k, cuboids: None };
        self.source(rel, disk).query(&plan).expect("in-memory scan cannot fail")
    }

    /// Binds the scan to its relation and metering device as a
    /// [`RankedSource`] — trivially progressive: the whole scan happens at
    /// open, the cursor just drains the sorted answers (time-to-first-
    /// answer equals full-query time; `extend_k` reveals more at no I/O).
    pub fn source<'a>(&'a self, rel: &'a Relation, disk: &'a DiskSim) -> ScanSource<'a> {
        ScanSource { scan: self, rel, disk }
    }

    /// Number of data pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }
}

/// A [`TableScan`] bound to its relation and metering device: the `TS`
/// baseline's [`RankedSource`].
#[derive(Debug, Clone, Copy)]
pub struct ScanSource<'a> {
    scan: &'a TableScan,
    rel: &'a Relation,
    disk: &'a DiskSim,
}

impl<'a> RankedSource<'a> for ScanSource<'a> {
    fn open(&self, plan: &QueryPlan<'a>) -> Result<TopKCursor<'a>, StorageError> {
        let before = self.disk.stats().snapshot();
        let mut stats = QueryStats::default();
        let mut items = Vec::new();
        for (pi, &page) in self.scan.pages.iter().enumerate() {
            self.disk.read(page);
            stats.blocks_read += 1;
            let start = pi * self.scan.rows_per_page;
            let end = ((pi + 1) * self.scan.rows_per_page).min(self.rel.len());
            for tid in start as u32..end as u32 {
                if !plan.selection.matches(self.rel, tid) {
                    continue;
                }
                let score = plan.func.score(&self.rel.ranking_point_proj(tid, plan.ranking_dims));
                items.push((tid, score));
                stats.tuples_scored += 1;
            }
        }
        stats.io = before.delta(&self.disk.stats().snapshot());
        Ok(TopKCursor::new(Box::new(SortedDrain::new(items, stats)), plan.k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcube_func::Linear;
    use rcube_table::gen::SyntheticSpec;

    #[test]
    fn scan_finds_exact_topk() {
        let rel = SyntheticSpec { tuples: 1_000, ..Default::default() }.generate();
        let disk = DiskSim::with_defaults();
        let ts = TableScan::new(&rel, &disk);
        let sel = Selection::new(vec![(0, 1)]);
        let res = ts.topk(&rel, &disk, &sel, &Linear::uniform(2), &[0, 1], 5);
        let mut want: Vec<f64> = rel
            .tids()
            .filter(|&t| sel.matches(&rel, t))
            .map(|t| rel.ranking_value(t, 0) + rel.ranking_value(t, 1))
            .collect();
        want.sort_by(f64::total_cmp);
        want.truncate(5);
        assert_eq!(res.scores().len(), want.len());
        for (g, w) in res.scores().iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn scan_reads_every_page_regardless_of_k() {
        let rel = SyntheticSpec { tuples: 5_000, ..Default::default() }.generate();
        let disk = DiskSim::with_defaults();
        let ts = TableScan::new(&rel, &disk);
        let r1 = ts.topk(&rel, &disk, &Selection::all(), &Linear::uniform(2), &[0, 1], 1);
        let r2 = ts.topk(&rel, &disk, &Selection::all(), &Linear::uniform(2), &[0, 1], 100);
        assert_eq!(r1.stats.blocks_read, r2.stats.blocks_read);
        assert_eq!(r1.stats.blocks_read as usize, ts.num_pages());
    }
}
