//! The ranking-first strategy ("Ranking" in Section 4.4).
//!
//! Progressive branch-and-bound over the R-tree — identical search order to
//! the signature method — but with **no** Boolean pruning: predicates are
//! verified tuple-at-a-time by random access, and only for tuples that have
//! already been determined as candidate results (popped from the heap),
//! which provably minimizes the number of verifications.

use rcube_core::query::{ProgressiveSearch, QueryPlan, RankedSource, TopKCursor};
use rcube_core::{QueryStats, TopKQuery, TopKResult};
use rcube_func::RankFn;
use rcube_index::rtree::RTree;
use rcube_index::{HierIndex, NodeHandle};
use rcube_storage::{DiskSim, IoSnapshot, StorageError};
use rcube_table::{Relation, Selection, Tid};

/// Ranking-first evaluator over an R-tree.
#[derive(Debug)]
pub struct RankingFirst;

#[derive(Debug)]
enum Entry {
    Node(NodeHandle),
    Tuple(Tid, f64),
}

#[derive(Debug)]
struct Item(f64, u64, Entry);

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 && self.1 == other.1
    }
}
impl Eq for Item {}
impl Ord for Item {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.total_cmp(&self.0).then(other.1.cmp(&self.1))
    }
}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl RankingFirst {
    /// Answers `query` with progressive R-tree retrieval + late Boolean
    /// verification — a thin batch wrapper over [`Self::source`].
    pub fn topk<F: RankFn>(
        rtree: &RTree,
        rel: &Relation,
        query: &TopKQuery<F>,
        disk: &DiskSim,
    ) -> TopKResult {
        Self::source(rtree, rel, disk).query(&query.plan()).expect("in-memory baseline cannot fail")
    }

    /// Binds an R-tree, relation and metering device as a
    /// [`RankedSource`]. Unlike the other baselines this one is genuinely
    /// progressive — the branch-and-bound heap certifies each tuple on
    /// pop, verification happens lazily, and `extend_k` resumes
    /// mid-descent — it just lacks Boolean pruning, paying one random
    /// access per candidate the signature cube would have pruned.
    pub fn source<'a>(
        rtree: &'a RTree,
        rel: &'a Relation,
        disk: &'a DiskSim,
    ) -> RankingFirstSource<'a> {
        RankingFirstSource { rtree, rel, disk }
    }
}

/// The `Ranking` baseline's [`RankedSource`].
#[derive(Debug, Clone, Copy)]
pub struct RankingFirstSource<'a> {
    rtree: &'a RTree,
    rel: &'a Relation,
    disk: &'a DiskSim,
}

impl<'a> RankedSource<'a> for RankingFirstSource<'a> {
    fn open(&self, plan: &QueryPlan<'a>) -> Result<TopKCursor<'a>, StorageError> {
        let proj = plan.ranking_dims.to_vec();
        let root = self.rtree.root();
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(Item(
            plan.func.lower_bound(&self.rtree.region(root).project(&proj)),
            0,
            Entry::Node(root),
        ));
        let search = RankingFirstSearch {
            rtree: self.rtree,
            rel: self.rel,
            disk: self.disk,
            func: plan.func,
            selection: plan.selection.clone(),
            proj,
            heap,
            seq: 0,
            stats: QueryStats::default(),
            before: self.disk.stats().snapshot(),
        };
        Ok(TopKCursor::new(Box::new(search), plan.k))
    }
}

/// The ranking-first loop as a resumable state machine: identical search
/// order to the signature method, tuple-at-a-time Boolean verification on
/// pop.
struct RankingFirstSearch<'a> {
    rtree: &'a RTree,
    rel: &'a Relation,
    disk: &'a DiskSim,
    func: &'a dyn RankFn,
    selection: Selection,
    proj: Vec<usize>,
    heap: std::collections::BinaryHeap<Item>,
    seq: u64,
    stats: QueryStats,
    before: IoSnapshot,
}

impl ProgressiveSearch for RankingFirstSearch<'_> {
    fn advance(&mut self) -> Result<Option<(Tid, f64)>, StorageError> {
        while let Some(Item(_, _, entry)) = self.heap.pop() {
            match entry {
                Entry::Tuple(tid, score) => {
                    // Late Boolean verification by random access.
                    self.disk.random_access();
                    if self.selection.matches(self.rel, tid) {
                        self.stats.tuples_scored += 1;
                        self.stats.peak_heap = self.stats.peak_heap.max(self.heap.len() as u64);
                        return Ok(Some((tid, score)));
                    }
                }
                Entry::Node(n) => {
                    self.rtree.read_node(self.disk, n);
                    self.stats.blocks_read += 1;
                    if self.rtree.is_leaf(n) {
                        for (tid, point) in self.rtree.leaf_entries(n) {
                            let vals: Vec<f64> = self.proj.iter().map(|&d| point[d]).collect();
                            let s = self.func.score(&vals);
                            self.seq += 1;
                            self.heap.push(Item(s, self.seq, Entry::Tuple(tid, s)));
                            self.stats.states_generated += 1;
                        }
                    } else {
                        for c in self.rtree.children(n) {
                            let b =
                                self.func.lower_bound(&self.rtree.region(c).project(&self.proj));
                            self.seq += 1;
                            self.heap.push(Item(b, self.seq, Entry::Node(c)));
                            self.stats.states_generated += 1;
                        }
                    }
                }
            }
            self.stats.peak_heap = self.stats.peak_heap.max(self.heap.len() as u64);
        }
        Ok(None)
    }

    fn stats(&self) -> QueryStats {
        let mut stats = self.stats;
        stats.io = self.before.delta(&self.disk.stats().snapshot());
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcube_func::{Linear, SqDist};
    use rcube_index::rtree::RTreeConfig;
    use rcube_table::gen::SyntheticSpec;
    use rcube_table::Selection;

    fn naive(rel: &Relation, sel: &Selection, f: &impl RankFn, k: usize) -> Vec<f64> {
        let mut v: Vec<f64> = rel
            .tids()
            .filter(|&t| sel.matches(rel, t))
            .map(|t| f.score(&rel.ranking_point(t)))
            .collect();
        v.sort_by(f64::total_cmp);
        v.truncate(k);
        v
    }

    #[test]
    fn matches_naive() {
        let rel = SyntheticSpec { tuples: 2_000, cardinality: 5, ..Default::default() }.generate();
        let disk = DiskSim::with_defaults();
        let rtree = RTree::over_relation(&disk, &rel, &[], RTreeConfig::small(16));
        for f in [Linear::new(vec![1.0, 2.0]), Linear::new(vec![0.5, 0.1])] {
            let q = TopKQuery::new(vec![(0, 2), (1, 3)], f.clone(), 10);
            let got = RankingFirst::topk(&rtree, &rel, &q, &disk);
            let want = naive(&rel, &q.selection, &f, 10);
            assert_eq!(got.items.len(), want.len());
            for (g, w) in got.scores().iter().zip(&want) {
                assert!((g - w).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn verification_count_grows_with_selectivity() {
        let rel = SyntheticSpec { tuples: 3_000, cardinality: 10, ..Default::default() }.generate();
        let disk = DiskSim::with_defaults();
        let rtree = RTree::over_relation(&disk, &rel, &[], RTreeConfig::small(16));
        let f = SqDist::new(vec![0.5, 0.5]);
        // Loose predicate: few wasted verifications. Tight: many.
        let loose = TopKQuery::new(vec![(0, 1)], f.clone(), 10);
        let tight = TopKQuery::new(vec![(0, 1), (1, 1), (2, 1)], f, 10);
        let rl = RankingFirst::topk(&rtree, &rel, &loose, &disk);
        let rt = RankingFirst::topk(&rtree, &rel, &tight, &disk);
        assert!(
            rt.stats.io.random_accesses > rl.stats.io.random_accesses,
            "tighter predicates force more wasted verifications ({} vs {})",
            rt.stats.io.random_accesses,
            rl.stats.io.random_accesses
        );
    }
}
