//! The ranking-first strategy ("Ranking" in Section 4.4).
//!
//! Progressive branch-and-bound over the R-tree — identical search order to
//! the signature method — but with **no** Boolean pruning: predicates are
//! verified tuple-at-a-time by random access, and only for tuples that have
//! already been determined as candidate results (popped from the heap),
//! which provably minimizes the number of verifications.

use rcube_core::{QueryStats, TopKHeap, TopKQuery, TopKResult};
use rcube_func::RankFn;
use rcube_index::rtree::RTree;
use rcube_index::{HierIndex, NodeHandle};
use rcube_storage::DiskSim;
use rcube_table::{Relation, Tid};

/// Ranking-first evaluator over an R-tree.
#[derive(Debug)]
pub struct RankingFirst;

#[derive(Debug)]
enum Entry {
    Node(NodeHandle),
    Tuple(Tid, f64),
}

#[derive(Debug)]
struct Item(f64, u64, Entry);

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 && self.1 == other.1
    }
}
impl Eq for Item {}
impl Ord for Item {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.total_cmp(&self.0).then(other.1.cmp(&self.1))
    }
}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl RankingFirst {
    /// Answers `query` with progressive R-tree retrieval + late Boolean
    /// verification.
    pub fn topk<F: RankFn>(
        rtree: &RTree,
        rel: &Relation,
        query: &TopKQuery<F>,
        disk: &DiskSim,
    ) -> TopKResult {
        let before = disk.stats().snapshot();
        let mut stats = QueryStats::default();
        let proj = &query.ranking_dims;
        let bound = |n: NodeHandle| query.func.lower_bound(&rtree.region(n).project(proj));

        let mut heap = std::collections::BinaryHeap::new();
        let mut seq = 0u64;
        let root = rtree.root();
        heap.push(Item(bound(root), seq, Entry::Node(root)));
        let mut topk = TopKHeap::new(query.k);

        while let Some(Item(b, _, entry)) = heap.pop() {
            if topk.kth_score() <= b {
                break;
            }
            match entry {
                Entry::Tuple(tid, score) => {
                    // Late Boolean verification by random access.
                    disk.random_access();
                    if query.selection.matches(rel, tid) {
                        topk.offer(tid, score);
                        stats.tuples_scored += 1;
                    }
                }
                Entry::Node(n) => {
                    rtree.read_node(disk, n);
                    stats.blocks_read += 1;
                    if rtree.is_leaf(n) {
                        for (tid, point) in rtree.leaf_entries(n) {
                            let vals: Vec<f64> = proj.iter().map(|&d| point[d]).collect();
                            let s = query.func.score(&vals);
                            seq += 1;
                            heap.push(Item(s, seq, Entry::Tuple(tid, s)));
                            stats.states_generated += 1;
                        }
                    } else {
                        for c in rtree.children(n) {
                            seq += 1;
                            heap.push(Item(bound(c), seq, Entry::Node(c)));
                            stats.states_generated += 1;
                        }
                    }
                }
            }
            stats.peak_heap = stats.peak_heap.max(heap.len() as u64);
        }
        stats.io = before.delta(&disk.stats().snapshot());
        TopKResult { items: topk.into_sorted(), stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcube_func::{Linear, SqDist};
    use rcube_index::rtree::RTreeConfig;
    use rcube_table::gen::SyntheticSpec;
    use rcube_table::Selection;

    fn naive(rel: &Relation, sel: &Selection, f: &impl RankFn, k: usize) -> Vec<f64> {
        let mut v: Vec<f64> = rel
            .tids()
            .filter(|&t| sel.matches(rel, t))
            .map(|t| f.score(&rel.ranking_point(t)))
            .collect();
        v.sort_by(f64::total_cmp);
        v.truncate(k);
        v
    }

    #[test]
    fn matches_naive() {
        let rel = SyntheticSpec { tuples: 2_000, cardinality: 5, ..Default::default() }.generate();
        let disk = DiskSim::with_defaults();
        let rtree = RTree::over_relation(&disk, &rel, &[], RTreeConfig::small(16));
        for f in [Linear::new(vec![1.0, 2.0]), Linear::new(vec![0.5, 0.1])] {
            let q = TopKQuery::new(vec![(0, 2), (1, 3)], f.clone(), 10);
            let got = RankingFirst::topk(&rtree, &rel, &q, &disk);
            let want = naive(&rel, &q.selection, &f, 10);
            assert_eq!(got.items.len(), want.len());
            for (g, w) in got.scores().iter().zip(&want) {
                assert!((g - w).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn verification_count_grows_with_selectivity() {
        let rel = SyntheticSpec { tuples: 3_000, cardinality: 10, ..Default::default() }.generate();
        let disk = DiskSim::with_defaults();
        let rtree = RTree::over_relation(&disk, &rel, &[], RTreeConfig::small(16));
        let f = SqDist::new(vec![0.5, 0.5]);
        // Loose predicate: few wasted verifications. Tight: many.
        let loose = TopKQuery::new(vec![(0, 1)], f.clone(), 10);
        let tight = TopKQuery::new(vec![(0, 1), (1, 1), (2, 1)], f, 10);
        let rl = RankingFirst::topk(&rtree, &rel, &loose, &disk);
        let rt = RankingFirst::topk(&rtree, &rel, &tight, &disk);
        assert!(
            rt.stats.io.random_accesses > rl.stats.io.random_accesses,
            "tighter predicates force more wasted verifications ({} vs {})",
            rt.stats.io.random_accesses,
            rl.stats.io.random_accesses
        );
    }
}
