//! Baseline query-evaluation strategies the thesis compares against.
//!
//! * [`TableScan`] — sequential scan + top-k heap (`TS` in Chapter 5).
//! * [`BooleanFirst`] — non-clustered B+-tree per selection dimension;
//!   filter first, rank later (the "Boolean" method of Section 4.4 and the
//!   DBMS *baseline* of Section 3.5: the server resolves the predicates
//!   through single-column indexes, then random-accesses the rows).
//! * [`RankingFirst`] — progressive R-tree search with tuple-at-a-time
//!   Boolean verification by random access ("Ranking", Section 4.4.1).
//! * [`RankMapping`] — the top-k → range-query transformation of [14] with
//!   *optimal* bound values (the thesis feeds the true kth score), executed
//!   over a clustered composite index (Section 3.5.1).

pub mod boolean_first;
pub mod rank_mapping;
pub mod ranking_first;
pub mod scan;

pub use boolean_first::{BooleanFirst, BooleanFirstSource};
pub use rank_mapping::{RankMapping, RankMappingSource};
pub use ranking_first::{RankingFirst, RankingFirstSource};
pub use scan::{ScanSource, TableScan};

use rcube_table::Relation;

/// Bytes of one row in the paper's storage model: 4 bytes per categorical
/// value, 8 per numeric.
pub(crate) fn row_bytes(rel: &Relation) -> usize {
    4 * rel.schema().num_selection() + 8 * rel.schema().num_ranking() + 4
}

/// Rows per simulated page for sequential-scan charging.
pub(crate) fn rows_per_page(rel: &Relation, page_size: usize) -> usize {
    (page_size / row_bytes(rel)).max(1)
}
