//! The rank-mapping baseline (Section 3.5.1, after [14]).
//!
//! A top-k query `ORDER BY f` maps to a *range query* `N1 ≤ n1 ∧ …` whose
//! bounds are chosen so that the true top-k answers fall inside the range.
//! The thesis makes the comparison "extremely conservative" by feeding the
//! approach **optimal** bounds — derived from the true kth score — which is
//! the best any workload-adaptive mapping could achieve; we do the same
//! (the oracle pass is not charged).
//!
//! Execution model: a clustered composite index on
//! `(A1, …, AS, bin(N1), …, bin(NR))`. Matching tuples form contiguous runs
//! in index order; the engine charges one B-tree descent plus the pages of
//! each run. Queries that bind a prefix of the index dimensions touch few
//! runs; queries skipping leading dimensions fragment into many runs —
//! reproducing the order-sensitivity reported in Figures 3.7/3.9.

use rcube_core::query::{ProgressiveSearch, QueryPlan, RankedSource, TopKCursor};
use rcube_core::{QueryStats, TopKHeap, TopKResult};
use rcube_func::{Linear, RankFn};
use rcube_storage::{DiskSim, IoSnapshot, StorageError};
use rcube_table::{Relation, Selection, Tid};

use crate::rows_per_page;

/// Bins per ranking dimension in the composite key.
const RANK_BINS: u32 = 64;

/// The rank-mapping evaluator.
#[derive(Debug)]
pub struct RankMapping {
    /// Tids in composite-key order (the clustered index).
    order: Vec<Tid>,
    /// tid → position in `order`.
    position: Vec<u32>,
    /// Simulated B-tree descent cost (pages per probe).
    descent: u64,
    rows_per_page: usize,
}

impl RankMapping {
    /// Builds the clustered composite index.
    pub fn build(rel: &Relation, disk: &DiskSim) -> Self {
        let mut order: Vec<Tid> = rel.tids().collect();
        order.sort_by_cached_key(|&t| composite_key(rel, t));
        let mut position = vec![0u32; rel.len()];
        for (pos, &t) in order.iter().enumerate() {
            position[t as usize] = pos as u32;
        }
        let rpp = rows_per_page(rel, disk.page_size());
        let leaves = rel.len().div_ceil(rpp).max(1);
        // Charge construction writes.
        for _ in 0..leaves {
            disk.write(disk.alloc_page());
        }
        let descent = ((leaves as f64).log(64.0).ceil() as u64).max(1);
        Self { order, position, descent, rows_per_page: rpp }
    }

    /// Answers a top-k query with **optimal** range bounds for a linear
    /// function — a thin batch wrapper over [`Self::source`].
    pub fn topk(
        &self,
        rel: &Relation,
        disk: &DiskSim,
        selection: &Selection,
        func: &Linear,
        ranking_dims: &[usize],
        k: usize,
    ) -> TopKResult {
        let plan = QueryPlan { selection, func, ranking_dims, k, cuboids: None };
        self.source(rel, disk).query(&plan).expect("in-memory baseline cannot fail")
    }

    /// Binds the mapping to its relation and metering device as a
    /// [`RankedSource`]. The bound oracle depends on `k`, so this source
    /// is the workspace's deliberate *non*-resumable engine: `extend_k`
    /// re-plans with wider bounds and re-reads the matching runs — the
    /// top-k → range-query transformation cannot paginate, exactly the
    /// order-sensitivity the paper criticizes (and the progressive bench
    /// records as the contrast to the cubes).
    ///
    /// Plans routed here must carry a linear ranking function.
    pub fn source<'a>(&'a self, rel: &'a Relation, disk: &'a DiskSim) -> RankMappingSource<'a> {
        RankMappingSource { rm: self, rel, disk }
    }

    /// One range-query execution planned for `k` answers: computes the
    /// optimal bounds via the uncharged oracle pass (as the thesis grants
    /// this baseline), charges descent + run pages, and returns every
    /// retrieved scored tuple. Only the first `k` of the sorted result are
    /// certified answers — tuples beyond the kth may lose to out-of-bounds
    /// tuples the range query never retrieved.
    #[allow(clippy::too_many_arguments)]
    fn run_range_query(
        &self,
        rel: &Relation,
        disk: &DiskSim,
        selection: &Selection,
        func: &Linear,
        ranking_dims: &[usize],
        k: usize,
        stats: &mut QueryStats,
    ) -> Vec<(Tid, f64)> {
        // Oracle: the true kth score (not charged).
        let mut oracle = TopKHeap::new(k);
        for t in rel.tids() {
            if selection.matches(rel, t) {
                oracle.offer(t, func.score(&rel.ranking_point_proj(t, ranking_dims)));
            }
        }
        let s_star = if oracle.len() < k { f64::INFINITY } else { oracle.kth_score() };

        // Optimal per-dimension bounds: wi·Ni ≤ s* − Σ_{j≠i} wj·min_j ⇒ for
        // the unit domain with non-negative weights, ni = s*/wi.
        let bounds: Vec<f64> = func
            .weights()
            .iter()
            .map(|&w| if w > 0.0 { (s_star / w).min(1.0) } else { 1.0 })
            .collect();

        // Range query: selection ∧ Ni ≤ ni over the clustered index.
        let matches: Vec<u32> = rel
            .tids()
            .filter(|&t| {
                selection.matches(rel, t)
                    && ranking_dims.iter().zip(&bounds).all(|(&d, &b)| rel.ranking_value(t, d) <= b)
            })
            .map(|t| self.position[t as usize])
            .collect();

        // Charge I/O: runs of consecutive index positions.
        let mut sorted = matches.clone();
        sorted.sort_unstable();
        let mut runs = 0u64;
        let mut pages = 0u64;
        let mut i = 0usize;
        while i < sorted.len() {
            let start = sorted[i];
            let mut end = start;
            while i + 1 < sorted.len() && sorted[i + 1] <= end + self.rows_per_page as u32 {
                i += 1;
                end = sorted[i];
            }
            runs += 1;
            pages += u64::from(end - start) / self.rows_per_page as u64 + 1;
            i += 1;
        }
        for _ in 0..runs * self.descent + pages {
            disk.read(disk.alloc_page()); // distinct pages: always misses
        }
        stats.blocks_read += runs * self.descent + pages;

        // Score the retrieved tuples.
        let mut items = Vec::with_capacity(sorted.len());
        for &pos in &sorted {
            let tid = self.order[pos as usize];
            let score = func.score(&rel.ranking_point_proj(tid, ranking_dims));
            items.push((tid, score));
            stats.tuples_scored += 1;
        }
        items.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        items
    }
}

/// A [`RankMapping`] bound to its relation and metering device: the
/// rank-mapping baseline's [`RankedSource`].
#[derive(Debug, Clone, Copy)]
pub struct RankMappingSource<'a> {
    rm: &'a RankMapping,
    rel: &'a Relation,
    disk: &'a DiskSim,
}

impl<'a> RankedSource<'a> for RankMappingSource<'a> {
    fn open(&self, plan: &QueryPlan<'a>) -> Result<TopKCursor<'a>, StorageError> {
        let weights = plan
            .func
            .linear_weights()
            .expect("rank-mapping supports linear ranking functions only")
            .to_vec();
        let search = RankMapSearch {
            rm: self.rm,
            rel: self.rel,
            disk: self.disk,
            selection: plan.selection.clone(),
            func: Linear::new(weights),
            ranking_dims: plan.ranking_dims.to_vec(),
            planned: None,
            items: Vec::new(),
            pos: 0,
            stats: QueryStats::default(),
            before: self.disk.stats().snapshot(),
        };
        Ok(TopKCursor::new(Box::new(search), plan.k))
    }
}

/// Rank-mapping's drain: executes the range query for the cursor's current
/// target `k` and re-executes with wider bounds whenever
/// [`ProgressiveSearch::reserve`] raises the target past what the bounds
/// certified — accumulating fresh descent/run I/O each time.
struct RankMapSearch<'a> {
    rm: &'a RankMapping,
    rel: &'a Relation,
    disk: &'a DiskSim,
    selection: Selection,
    func: Linear,
    ranking_dims: Vec<usize>,
    /// The `k` the current bounds were derived for (`None`: not run yet).
    planned: Option<usize>,
    /// All retrieved tuples, `(score, tid)`-sorted; only the first
    /// `planned` are certified answers.
    items: Vec<(Tid, f64)>,
    pos: usize,
    stats: QueryStats,
    before: IoSnapshot,
}

impl ProgressiveSearch for RankMapSearch<'_> {
    fn advance(&mut self) -> Result<Option<(Tid, f64)>, StorageError> {
        let certified = self.planned.unwrap_or(0).min(self.items.len());
        if self.pos >= certified {
            return Ok(None);
        }
        let item = self.items[self.pos];
        self.pos += 1;
        Ok(Some(item))
    }

    fn stats(&self) -> QueryStats {
        let mut stats = self.stats;
        stats.io = self.before.delta(&self.disk.stats().snapshot());
        stats
    }

    fn reserve(&mut self, k: usize) {
        if self.planned.is_some_and(|p| p >= k) {
            return;
        }
        if k == 0 {
            // Nothing certifiable: don't run the oracle + range scan
            // (k = 0 collapses the bounds to the whole domain).
            self.planned = Some(0);
            return;
        }
        // Re-plan: wider bounds for the larger k, a fresh descent and a
        // fresh run scan. The sorted prefix already emitted is stable (it
        // is the true top-`pos`), so emission continues in place.
        self.planned = Some(k);
        self.items = self.rm.run_range_query(
            self.rel,
            self.disk,
            &self.selection,
            &self.func,
            &self.ranking_dims,
            k,
            &mut self.stats,
        );
    }
}

fn composite_key(rel: &Relation, t: Tid) -> Vec<u32> {
    let mut key = Vec::with_capacity(rel.schema().num_selection() + rel.schema().num_ranking());
    for d in 0..rel.schema().num_selection() {
        key.push(rel.selection_value(t, d));
    }
    for d in 0..rel.schema().num_ranking() {
        let v = rel.ranking_value(t, d).clamp(0.0, 1.0);
        key.push(((v * RANK_BINS as f64) as u32).min(RANK_BINS - 1));
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcube_table::gen::SyntheticSpec;

    #[test]
    fn optimal_bounds_recover_exact_topk() {
        let rel = SyntheticSpec { tuples: 2_000, cardinality: 6, ..Default::default() }.generate();
        let disk = DiskSim::with_defaults();
        let rm = RankMapping::build(&rel, &disk);
        let sel = Selection::new(vec![(0, 2)]);
        let f = Linear::new(vec![1.0, 2.0]);
        let res = rm.topk(&rel, &disk, &sel, &f, &[0, 1], 10);
        let mut want: Vec<f64> = rel
            .tids()
            .filter(|&t| sel.matches(&rel, t))
            .map(|t| rel.ranking_value(t, 0) + 2.0 * rel.ranking_value(t, 1))
            .collect();
        want.sort_by(f64::total_cmp);
        want.truncate(10);
        assert_eq!(res.scores().len(), want.len());
        for (g, w) in res.scores().iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn larger_k_reads_more() {
        let rel = SyntheticSpec { tuples: 5_000, ..Default::default() }.generate();
        let disk = DiskSim::with_defaults();
        let rm = RankMapping::build(&rel, &disk);
        let sel = Selection::new(vec![(0, 1)]);
        let f = Linear::uniform(2);
        let small = rm.topk(&rel, &disk, &sel, &f, &[0, 1], 5);
        let large = rm.topk(&rel, &disk, &sel, &f, &[0, 1], 50);
        assert!(large.stats.blocks_read >= small.stats.blocks_read);
    }

    #[test]
    fn prefix_bound_queries_touch_fewer_runs() {
        // Binding the leading index dimension (A1) clusters matches;
        // binding only a later dimension fragments them.
        let rel = SyntheticSpec { tuples: 4_000, cardinality: 10, ..Default::default() }.generate();
        let disk = DiskSim::with_defaults();
        let rm = RankMapping::build(&rel, &disk);
        let f = Linear::uniform(2);
        let lead = rm.topk(&rel, &disk, &Selection::new(vec![(0, 3)]), &f, &[0, 1], 10);
        let trail = rm.topk(&rel, &disk, &Selection::new(vec![(2, 3)]), &f, &[0, 1], 10);
        assert!(
            trail.stats.blocks_read > lead.stats.blocks_read,
            "non-prefix selections must fragment the range scan ({} vs {})",
            trail.stats.blocks_read,
            lead.stats.blocks_read
        );
    }

    #[test]
    fn underfull_answer_sets_widen_bounds() {
        let rel = SyntheticSpec { tuples: 300, cardinality: 40, ..Default::default() }.generate();
        let disk = DiskSim::with_defaults();
        let rm = RankMapping::build(&rel, &disk);
        // Very selective: likely fewer than k matches — bounds become the
        // whole domain and the query still returns every match.
        let sel = Selection::new(vec![(0, 5), (1, 5)]);
        let res = rm.topk(&rel, &disk, &sel, &Linear::uniform(2), &[0, 1], 10);
        let matching = rel.tids().filter(|&t| sel.matches(&rel, t)).count();
        assert_eq!(res.items.len(), matching.min(10));
    }
}
