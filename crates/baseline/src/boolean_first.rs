//! The Boolean-first strategy ("Boolean" in Section 4.4; the DBMS baseline
//! of Section 3.5).
//!
//! One non-clustered B+-tree per selection dimension. A query resolves its
//! most selective predicate through the index (or falls back to a table
//! scan when the optimizer predicts the index is worse), verifies the
//! remaining predicates and fetches ranking values by random access, then
//! buffers and sorts every match so the cursor can drain and `extend_k`
//! without touching storage again — memory is O(matches), the price a
//! filter-first plan pays for resumable pagination.

use rcube_core::query::{QueryPlan, RankedSource, SortedDrain, TopKCursor};
use rcube_core::{QueryStats, TopKResult};
use rcube_func::RankFn;
use rcube_index::BPlusTree;
use rcube_storage::{DiskSim, StorageError};
use rcube_table::{Relation, Selection, Tid};

use crate::{rows_per_page, scan::TableScan};

/// Boolean-first evaluator with per-dimension B+-tree indexes.
#[derive(Debug)]
pub struct BooleanFirst {
    indexes: Vec<BPlusTree>,
    scan: TableScan,
}

impl BooleanFirst {
    /// Builds one B+-tree per selection dimension plus the heap file.
    pub fn build(rel: &Relation, disk: &DiskSim) -> Self {
        let indexes = (0..rel.schema().num_selection())
            .map(|d| {
                let entries = rel.tids().map(|t| (rel.selection_value(t, d) as f64, t)).collect();
                BPlusTree::bulk_load(disk, entries)
            })
            .collect();
        Self { indexes, scan: TableScan::new(rel, disk) }
    }

    /// Answers a top-k query — a thin batch wrapper over [`Self::source`]:
    /// index scan on the most selective predicate (estimated via dimension
    /// cardinality), then verify + rank via random accesses; or a plain
    /// table scan when predicted cheaper.
    pub fn topk<F: RankFn>(
        &self,
        rel: &Relation,
        disk: &DiskSim,
        selection: &Selection,
        func: &F,
        ranking_dims: &[usize],
        k: usize,
    ) -> TopKResult {
        let plan = QueryPlan { selection, func, ranking_dims, k, cuboids: None };
        self.source(rel, disk).query(&plan).expect("in-memory baseline cannot fail")
    }

    /// Binds the evaluator to its relation and metering device as a
    /// [`RankedSource`] — trivially progressive: filter-then-rank runs
    /// fully at open, the cursor drains the sorted answers.
    pub fn source<'a>(&'a self, rel: &'a Relation, disk: &'a DiskSim) -> BooleanFirstSource<'a> {
        BooleanFirstSource { bf: self, rel, disk }
    }
}

/// A [`BooleanFirst`] bound to its relation and metering device: the
/// `Boolean` baseline's [`RankedSource`].
#[derive(Debug, Clone, Copy)]
pub struct BooleanFirstSource<'a> {
    bf: &'a BooleanFirst,
    rel: &'a Relation,
    disk: &'a DiskSim,
}

impl<'a> RankedSource<'a> for BooleanFirstSource<'a> {
    fn open(&self, plan: &QueryPlan<'a>) -> Result<TopKCursor<'a>, StorageError> {
        let (rel, disk) = (self.rel, self.disk);
        if plan.selection.is_empty() {
            return self.bf.scan.source(rel, disk).open(plan);
        }
        // Cost model: index plan ≈ expected matches (random accesses);
        // scan plan ≈ page count. Pick the cheaper (Section 4.4.1 reports
        // the best of the two).
        let best = plan
            .selection
            .conds()
            .iter()
            .max_by_key(|&&(d, _)| rel.schema().selection_dim(d).cardinality())
            .copied()
            .expect("non-empty selection");
        let expected = rel.len() as f64 / rel.schema().selection_dim(best.0).cardinality() as f64;
        let scan_pages = rel.len().div_ceil(rows_per_page(rel, disk.page_size())) as f64;
        if expected >= scan_pages {
            return self.bf.scan.source(rel, disk).open(plan);
        }

        let before = disk.stats().snapshot();
        let mut stats = QueryStats::default();
        let tids: Vec<Tid> = self.bf.indexes[best.0].lookup(disk, best.1 as f64);
        let mut items = Vec::new();
        for tid in tids {
            // Random access to fetch the full row for residual predicates
            // and ranking values.
            disk.random_access();
            if !plan.selection.matches(rel, tid) {
                continue;
            }
            let score = plan.func.score(&rel.ranking_point_proj(tid, plan.ranking_dims));
            items.push((tid, score));
            stats.tuples_scored += 1;
        }
        stats.io = before.delta(&disk.stats().snapshot());
        Ok(TopKCursor::new(Box::new(SortedDrain::new(items, stats)), plan.k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcube_func::Linear;
    use rcube_table::gen::SyntheticSpec;

    fn naive(rel: &Relation, sel: &Selection, k: usize) -> Vec<f64> {
        let mut v: Vec<f64> = rel
            .tids()
            .filter(|&t| sel.matches(rel, t))
            .map(|t| rel.ranking_value(t, 0) + rel.ranking_value(t, 1))
            .collect();
        v.sort_by(f64::total_cmp);
        v.truncate(k);
        v
    }

    #[test]
    fn matches_naive_on_conjunctions() {
        let rel = SyntheticSpec { tuples: 2_000, cardinality: 8, ..Default::default() }.generate();
        let disk = DiskSim::with_defaults();
        let bf = BooleanFirst::build(&rel, &disk);
        for conds in [vec![(0, 3)], vec![(0, 1), (1, 2)], vec![(0, 0), (1, 0), (2, 0)]] {
            let sel = Selection::new(conds.clone());
            let res = bf.topk(&rel, &disk, &sel, &Linear::uniform(2), &[0, 1], 10);
            let want = naive(&rel, &sel, 10);
            assert_eq!(res.scores().len(), want.len(), "conds {conds:?}");
            for (g, w) in res.scores().iter().zip(&want) {
                assert!((g - w).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn index_plan_charges_random_accesses() {
        let rel =
            SyntheticSpec { tuples: 4_000, cardinality: 200, ..Default::default() }.generate();
        let disk = DiskSim::with_defaults();
        let bf = BooleanFirst::build(&rel, &disk);
        let sel = Selection::new(vec![(0, 7)]);
        let res = bf.topk(&rel, &disk, &sel, &Linear::uniform(2), &[0, 1], 10);
        assert!(res.stats.io.random_accesses > 0, "index plan must random-access rows");
        // Roughly T/C matches expected.
        let expect = 4_000 / 200;
        assert!((res.stats.io.random_accesses as i64 - expect).abs() < expect);
    }

    #[test]
    fn low_cardinality_falls_back_to_scan() {
        let rel = SyntheticSpec { tuples: 3_000, cardinality: 2, ..Default::default() }.generate();
        let disk = DiskSim::with_defaults();
        let bf = BooleanFirst::build(&rel, &disk);
        let sel = Selection::new(vec![(0, 1)]);
        let res = bf.topk(&rel, &disk, &sel, &Linear::uniform(2), &[0, 1], 10);
        // Scan plan: no random accesses.
        assert_eq!(res.stats.io.random_accesses, 0);
        assert!(!res.items.is_empty());
    }
}
