//! Deterministic fault injection for crash-safety and degradation tests.
//!
//! Two layers, matching the two places real systems fail:
//!
//! * [`FaultPlan`] — a *media* plan shared with a [`crate::FileBackend`]
//!   (`create_faulted` / `open_writable_faulted`). It scripts faults at
//!   the raw page-I/O boundary: crash after the Nth page write (torn
//!   prefix or fully dropped — everything after the crash point silently
//!   fails to persist, like a kernel losing its dirty pages), `ENOSPC`
//!   on a scripted write, transient `EIO` on reads, and sticky bit flips
//!   applied to read buffers (media corruption without rewriting the
//!   file).
//! * [`FaultBackend`] — an *object-level* [`PageBackend`] wrapper for
//!   engine-degradation tests: scripted transient errors on the next N
//!   `get`s and permanently poisoned objects that always fail their
//!   checksum, with every other call forwarded untouched.
//!
//! Everything is driven by explicit scripts (atomics set by the test),
//! so a failing run replays exactly. The crash model preserves program
//! order: if write *i* persisted, every write before *i* persisted too —
//! the guarantee `fsync` + a single-disk crash gives, and the one the
//! double-superblock commit protocol is designed for.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use rcube_obs::{Counter, Metrics};

use crate::backend::{PageBackend, StorageError};
use crate::buffer::PoolStats;
use crate::disk::{DiskSim, PageId};

/// How the crash point mangles the page write it lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashMode {
    /// The write does not persist at all.
    #[default]
    Dropped,
    /// The write persists a prefix of `keep` bytes; the rest of the page
    /// keeps its previous contents (a torn sector write).
    Torn { keep: usize },
}

/// A boundary of the vacuum swap protocol (`format` § *Locking & swap
/// protocol*), each individually crash-scriptable via
/// [`FaultPlan::crash_at_swap`]. Stages run in declaration order; a
/// crash at a stage means the process died *before* performing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapStage {
    /// Before the first page of the sibling temp file is written
    /// (crashes *during* the temp write are scripted page-by-page with
    /// [`FaultPlan::crash_after_page_writes`] on the temp backend).
    TempWrite = 0,
    /// Before the temp file's contents are fsynced.
    TempSync = 1,
    /// Before the temp file is renamed over the target.
    Rename = 2,
    /// Before the writer lock file is removed — the lock file survives
    /// the "death", exercising the stale-lock takeover rule.
    LockRelease = 3,
}

/// What the backend should do with one raw page write (decided by
/// [`FaultPlan::on_write`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Persist the full buffer.
    Persist,
    /// Persist only the first `keep` bytes.
    Prefix(usize),
    /// Persist nothing (but report success to the oblivious writer).
    Drop,
}

/// A scripted, deterministic media-fault plan (see module docs). Share
/// one `Arc<FaultPlan>` between the test and a faulted [`crate::FileBackend`];
/// reprogram it mid-run through the atomics.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Raw page writes observed so far.
    writes: AtomicU64,
    /// Raw page reads observed so far.
    reads: AtomicU64,
    /// Write index at which the simulated crash hits (`u64::MAX` = never).
    crash_after: AtomicU64,
    /// Crash mode for the write at the crash point.
    crash_mode: Mutex<CrashMode>,
    /// Write index that fails with `ENOSPC` (one-shot; `u64::MAX` = never).
    enospc_at: AtomicU64,
    /// Remaining reads to fail with a transient `EIO`.
    transient_reads: AtomicU64,
    /// Sticky corruption: `(file offset, xor mask)` applied to every read
    /// buffer covering that offset.
    corruption: Mutex<Vec<(u64, u8)>>,
    /// Bitmask of [`SwapStage`]s armed to crash (bit = stage discriminant).
    swap_crash: AtomicU64,
    /// Latched once any armed swap-stage crash has fired.
    swap_crashed: AtomicBool,
    /// Live fault-trip counters ([`FaultPlan::attach_metrics`]).
    metrics: OnceLock<FaultMetricSet>,
}

/// Pre-resolved counters for injected-fault trips.
#[derive(Debug)]
struct FaultMetricSet {
    write_trips: Counter,
    read_trips: Counter,
}

impl FaultPlan {
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            crash_after: AtomicU64::new(u64::MAX),
            crash_mode: Mutex::new(CrashMode::Dropped),
            enospc_at: AtomicU64::new(u64::MAX),
            ..Self::default()
        })
    }

    /// Crash at page-write index `n` (0-based): that write is mangled per
    /// `mode` and every later write is silently dropped.
    pub fn crash_after_page_writes(&self, n: u64, mode: CrashMode) {
        *self.crash_mode.lock().unwrap() = mode;
        self.crash_after.store(n, Ordering::SeqCst);
    }

    /// Fail the page write at index `n` with `ENOSPC` (one-shot).
    pub fn enospc_at_page_write(&self, n: u64) {
        self.enospc_at.store(n, Ordering::SeqCst);
    }

    /// Fail the next `n` raw page reads with a transient `EIO`
    /// (`ErrorKind::Interrupted`, so [`StorageError::is_transient`] holds).
    pub fn fail_next_reads(&self, n: u64) {
        self.transient_reads.store(n, Ordering::SeqCst);
    }

    /// Sticky media corruption: every read covering file `offset` sees
    /// the byte XORed with `mask`.
    pub fn corrupt_byte(&self, offset: u64, mask: u8) {
        self.corruption.lock().unwrap().push((offset, mask));
    }

    /// Arm a crash at one vacuum-swap boundary: the process "dies"
    /// immediately before performing `stage`.
    pub fn crash_at_swap(&self, stage: SwapStage) {
        self.swap_crash.fetch_or(1 << stage as u64, Ordering::SeqCst);
    }

    /// Swap-protocol hook: called immediately before each swap stage.
    /// Returns the injected crash as an error when that stage is armed;
    /// the caller must abort the swap without performing the stage.
    pub fn on_swap(&self, stage: SwapStage) -> Result<(), std::io::Error> {
        if self.swap_crash.load(Ordering::SeqCst) & (1 << stage as u64) != 0 {
            self.swap_crashed.store(true, Ordering::SeqCst);
            self.trip_write();
            return Err(std::io::Error::other(format!("injected crash at swap stage {stage:?}")));
        }
        Ok(())
    }

    /// Lock-release hook (see `crate::lock::WriterLock`): when the
    /// [`SwapStage::LockRelease`] crash is armed, latches the crash and
    /// returns true — the caller must leave the lock file on disk.
    pub fn lock_release_crashes(&self) -> bool {
        if self.swap_crash.load(Ordering::SeqCst) & (1 << SwapStage::LockRelease as u64) != 0 {
            self.swap_crashed.store(true, Ordering::SeqCst);
            self.trip_write();
            return true;
        }
        false
    }

    /// Counts fault trips into `metrics` (`{prefix}.fault.write_trips`
    /// for crash/ENOSPC-mangled writes, `{prefix}.fault.read_trips` for
    /// injected read errors and corruption applications).
    pub fn attach_metrics(&self, metrics: &Metrics, prefix: &str) {
        let _ = self.metrics.set(FaultMetricSet {
            write_trips: metrics.counter(&format!("{prefix}.fault.write_trips")),
            read_trips: metrics.counter(&format!("{prefix}.fault.read_trips")),
        });
    }

    fn trip_write(&self) {
        if let Some(ms) = self.metrics.get() {
            ms.write_trips.inc();
        }
    }

    fn trip_read(&self) {
        if let Some(ms) = self.metrics.get() {
            ms.read_trips.inc();
        }
    }

    /// Raw page writes observed so far (counting dropped ones).
    pub fn writes_observed(&self) -> u64 {
        self.writes.load(Ordering::SeqCst)
    }

    /// Raw page reads observed so far.
    pub fn reads_observed(&self) -> u64 {
        self.reads.load(Ordering::SeqCst)
    }

    /// True once the scripted crash point has been reached (page-write
    /// crash point or any armed swap-stage crash).
    pub fn crashed(&self) -> bool {
        self.writes.load(Ordering::SeqCst) > self.crash_after.load(Ordering::SeqCst)
            || self.swap_crashed.load(Ordering::SeqCst)
    }

    /// Backend hook: classify the next raw page write.
    pub fn on_write(&self) -> Result<WriteOutcome, std::io::Error> {
        let idx = self.writes.fetch_add(1, Ordering::SeqCst);
        if idx == self.enospc_at.load(Ordering::SeqCst) {
            self.enospc_at.store(u64::MAX, Ordering::SeqCst);
            self.trip_write();
            // Raw errno 28 (ENOSPC) — `ErrorKind::StorageFull` is not a
            // stable constructor, the raw code is.
            return Err(std::io::Error::from_raw_os_error(28));
        }
        let crash = self.crash_after.load(Ordering::SeqCst);
        if idx > crash {
            self.trip_write();
            return Ok(WriteOutcome::Drop);
        }
        if idx == crash {
            self.trip_write();
            return Ok(match *self.crash_mode.lock().unwrap() {
                CrashMode::Torn { keep } => WriteOutcome::Prefix(keep),
                CrashMode::Dropped => WriteOutcome::Drop,
            });
        }
        Ok(WriteOutcome::Persist)
    }

    /// Backend hook: fault/corrupt one raw page read of `len` bytes at
    /// file `offset`. Mutates `buf` in place for sticky corruption.
    pub fn on_read(&self, offset: u64, buf: &mut [u8]) -> Result<(), std::io::Error> {
        self.reads.fetch_add(1, Ordering::SeqCst);
        // Saturating decrement: fail while the scripted budget lasts.
        let mut remaining = self.transient_reads.load(Ordering::SeqCst);
        while remaining > 0 {
            match self.transient_reads.compare_exchange(
                remaining,
                remaining - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    self.trip_read();
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::Interrupted,
                        "injected transient EIO",
                    ));
                }
                Err(seen) => remaining = seen,
            }
        }
        let corruption = self.corruption.lock().unwrap();
        for &(at, mask) in corruption.iter() {
            if at >= offset && at < offset + buf.len() as u64 {
                buf[(at - offset) as usize] ^= mask;
                self.trip_read();
            }
        }
        Ok(())
    }
}

/// Object-level fault wrapper: forwards every [`PageBackend`] call to the
/// inner backend, injecting scripted failures on `get` (see module docs).
#[derive(Debug)]
pub struct FaultBackend {
    inner: Arc<dyn PageBackend>,
    /// Remaining `get`s to fail with a transient error.
    transient_gets: AtomicU64,
    /// Objects whose `get`/`peek` permanently fails a checksum.
    poisoned: Mutex<HashSet<u64>>,
    /// Live fault-trip counters (attached via `PageBackend::attach_metrics`).
    metrics: OnceLock<FaultMetricSet>,
}

impl FaultBackend {
    pub fn new(inner: Arc<dyn PageBackend>) -> Arc<Self> {
        Arc::new(Self {
            inner,
            transient_gets: AtomicU64::new(0),
            poisoned: Mutex::new(HashSet::new()),
            metrics: OnceLock::new(),
        })
    }

    /// Fail the next `n` object reads with a transient I/O error.
    pub fn fail_next_gets(&self, n: u64) {
        self.transient_gets.store(n, Ordering::SeqCst);
    }

    /// Permanently poison the object rooted at `first`: every read
    /// reports a checksum mismatch, as if its pages were flipped on disk.
    pub fn poison(&self, first: PageId) {
        self.poisoned.lock().unwrap().insert(first.0);
    }

    /// Clear all scripted faults.
    pub fn heal(&self) {
        self.transient_gets.store(0, Ordering::SeqCst);
        self.poisoned.lock().unwrap().clear();
    }

    fn check_read(&self, first: PageId) -> Result<(), StorageError> {
        if self.poisoned.lock().unwrap().contains(&first.0) {
            if let Some(ms) = self.metrics.get() {
                ms.read_trips.inc();
            }
            return Err(StorageError::ChecksumMismatch { page: first.0 });
        }
        let mut remaining = self.transient_gets.load(Ordering::SeqCst);
        while remaining > 0 {
            match self.transient_gets.compare_exchange(
                remaining,
                remaining - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    if let Some(ms) = self.metrics.get() {
                        ms.read_trips.inc();
                    }
                    return Err(StorageError::Io(std::io::Error::new(
                        std::io::ErrorKind::Interrupted,
                        "injected transient get failure",
                    )));
                }
                Err(seen) => remaining = seen,
            }
        }
        Ok(())
    }
}

impl PageBackend for FaultBackend {
    fn put(&self, disk: &DiskSim, data: Vec<u8>) -> Result<PageId, StorageError> {
        self.inner.put(disk, data)
    }

    fn overwrite(&self, disk: &DiskSim, first: PageId, data: Vec<u8>) -> Result<(), StorageError> {
        self.inner.overwrite(disk, first, data)
    }

    fn get(&self, disk: &DiskSim, first: PageId) -> Result<Arc<[u8]>, StorageError> {
        self.check_read(first)?;
        self.inner.get(disk, first)
    }

    fn peek(&self, first: PageId) -> Result<Arc<[u8]>, StorageError> {
        self.check_read(first)?;
        self.inner.peek(first)
    }

    fn size_of(&self, first: PageId) -> Option<usize> {
        self.inner.size_of(first)
    }

    fn total_bytes(&self) -> usize {
        self.inner.total_bytes()
    }

    fn object_count(&self) -> usize {
        self.inner.object_count()
    }

    fn clear_cache(&self) {
        self.inner.clear_cache()
    }

    fn flush(&self) -> Result<(), StorageError> {
        self.inner.flush()
    }

    fn read_only(&self) -> bool {
        self.inner.read_only()
    }

    fn catalog(&self) -> Option<PageId> {
        self.inner.catalog()
    }

    fn set_catalog(&self, first: PageId) -> Result<(), StorageError> {
        self.inner.set_catalog(first)
    }

    fn put_catalog(&self, disk: &DiskSim, data: Vec<u8>) -> Result<PageId, StorageError> {
        self.inner.put_catalog(disk, data)
    }

    fn pool_stats(&self) -> Option<PoolStats> {
        self.inner.pool_stats()
    }

    fn generation(&self) -> Option<u64> {
        self.inner.generation()
    }

    fn retire(&self, first: PageId) -> Result<(), StorageError> {
        self.inner.retire(first)
    }

    fn reclaimable_pages(&self) -> u64 {
        self.inner.reclaimable_pages()
    }

    fn attach_metrics(&self, metrics: &Metrics, prefix: &str) {
        let _ = self.metrics.set(FaultMetricSet {
            write_trips: metrics.counter(&format!("{prefix}.fault.write_trips")),
            read_trips: metrics.counter(&format!("{prefix}.fault.read_trips")),
        });
        self.inner.attach_metrics(metrics, prefix);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    #[test]
    fn write_script_crashes_then_drops() {
        let plan = FaultPlan::new();
        plan.crash_after_page_writes(2, CrashMode::Torn { keep: 10 });
        assert_eq!(plan.on_write().unwrap(), WriteOutcome::Persist);
        assert_eq!(plan.on_write().unwrap(), WriteOutcome::Persist);
        assert_eq!(plan.on_write().unwrap(), WriteOutcome::Prefix(10));
        assert_eq!(plan.on_write().unwrap(), WriteOutcome::Drop);
        assert!(plan.crashed());
    }

    #[test]
    fn enospc_is_one_shot() {
        let plan = FaultPlan::new();
        plan.enospc_at_page_write(1);
        assert_eq!(plan.on_write().unwrap(), WriteOutcome::Persist);
        let err = plan.on_write().unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
        assert_eq!(plan.on_write().unwrap(), WriteOutcome::Persist);
    }

    #[test]
    fn read_faults_flip_and_interrupt() {
        let plan = FaultPlan::new();
        plan.corrupt_byte(105, 0x40);
        let mut buf = vec![0u8; 100];
        plan.on_read(100, &mut buf).unwrap();
        assert_eq!(buf[5], 0x40);
        plan.fail_next_reads(1);
        assert!(plan.on_read(0, &mut buf).is_err());
        plan.on_read(0, &mut buf).unwrap();
        assert_eq!(plan.reads_observed(), 3);
    }

    #[test]
    fn swap_stage_crashes_latch() {
        let plan = FaultPlan::new();
        assert!(plan.on_swap(SwapStage::Rename).is_ok());
        assert!(!plan.crashed());
        plan.crash_at_swap(SwapStage::Rename);
        assert!(plan.on_swap(SwapStage::TempSync).is_ok());
        assert!(plan.on_swap(SwapStage::Rename).is_err());
        assert!(plan.crashed());

        let plan = FaultPlan::new();
        assert!(!plan.lock_release_crashes());
        plan.crash_at_swap(SwapStage::LockRelease);
        assert!(plan.lock_release_crashes());
        assert!(plan.crashed());
    }

    #[test]
    fn fault_backend_scripts_transient_and_poisoned_gets() {
        let disk = DiskSim::with_defaults();
        let be = FaultBackend::new(Arc::new(MemBackend::new()));
        let a = be.put(&disk, vec![1u8; 50]).unwrap();
        let b = be.put(&disk, vec![2u8; 50]).unwrap();
        be.fail_next_gets(1);
        let err = be.get(&disk, a).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(&be.get(&disk, a).unwrap()[..], &[1u8; 50][..]);
        be.poison(b);
        assert!(matches!(be.get(&disk, b), Err(StorageError::ChecksumMismatch { .. })));
        be.heal();
        assert_eq!(&be.get(&disk, b).unwrap()[..], &[2u8; 50][..]);
    }
}
