//! Cross-process writer exclusion via an advisory lock file.
//!
//! The cube-file commit protocol tolerates any number of concurrent
//! *readers* (each pins a committed generation at open), but exactly one
//! *writer*: two processes appending generations to the same file would
//! interleave page allocations and tear the alloc map. [`WriterLock`]
//! closes that hole without platform-specific `flock` bindings (this
//! workspace is dependency-free): exclusion rides on the atomicity of
//! `O_CREAT | O_EXCL` file creation, which every target filesystem
//! provides.
//!
//! Protocol (documented in full in [`crate::format`] § *Locking & swap
//! protocol*):
//!
//! * The lock file is `<cube-path>.lock`, created with `create_new` (the
//!   `O_CREAT | O_EXCL` equivalent — creation fails if the file exists).
//!   Its contents are the owner's PID in ASCII decimal.
//! * If creation fails because the file exists, the owner PID is read
//!   and probed for liveness. A live owner means the lock is genuinely
//!   held: the caller gets [`StorageError::WriterLocked`] and must not
//!   write. A dead or unparseable owner marks a *stale* lock left by a
//!   crashed writer: the file is removed and acquisition retried
//!   (bounded, so two racing takeovers resolve to one winner and one
//!   typed error).
//! * Liveness probe: on Linux, `/proc/<pid>` existence. Elsewhere there
//!   is no portable probe without libc, so the fallback is conservative
//!   — every recorded owner is presumed alive and stale locks must be
//!   removed by hand (fail-safe: never steals a possibly-live lock).
//! * Release removes the lock file; [`Drop`] releases automatically. A
//!   scripted [`crate::fault::FaultPlan`] crash at
//!   [`crate::fault::SwapStage::LockRelease`] skips the removal,
//!   simulating a writer that died holding the lock.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::backend::StorageError;
use crate::fault::FaultPlan;

/// Takeover retries: one stale removal plus one re-attempt is enough to
/// resolve any single stale lock; more only masks livelock between two
/// racing writers.
const ACQUIRE_ATTEMPTS: usize = 3;

/// The sibling lock-file path for a cube file: `<path>.lock`.
pub fn lock_path_for(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".lock");
    PathBuf::from(os)
}

/// True when `pid` belongs to a live process (see module docs for the
/// probe and its off-Linux fallback). The current process is always
/// live — a second writable handle in the same process is a real
/// conflict, not a stale lock.
pub fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        // No portable liveness probe without libc: presume alive, so a
        // stale lock is never stolen from a process we cannot observe.
        true
    }
}

/// An acquired advisory writer lock on one cube file. Held by writable
/// [`crate::FileBackend`] handles and by the vacuum swap; released on
/// [`Drop`].
#[derive(Debug)]
pub struct WriterLock {
    lock_path: PathBuf,
    released: AtomicBool,
    /// Fault hook for the swap sweep: armed `LockRelease` crashes leave
    /// the lock file behind. Only the vacuum's explicitly guarded lock
    /// carries a plan; backend-internal locks always release cleanly.
    faults: Option<Arc<FaultPlan>>,
}

impl WriterLock {
    /// Acquires the writer lock for the cube file at `target`, taking
    /// over stale locks from dead owners. Fails fast with
    /// [`StorageError::WriterLocked`] when a live owner holds it.
    pub fn acquire(target: &Path) -> Result<Self, StorageError> {
        Self::acquire_guarded(target, None)
    }

    /// [`WriterLock::acquire`] with a fault plan consulted at release
    /// time (the vacuum swap's `LockRelease` crash point).
    pub fn acquire_guarded(
        target: &Path,
        faults: Option<Arc<FaultPlan>>,
    ) -> Result<Self, StorageError> {
        let lock_path = lock_path_for(target);
        let mut owner = 0u32;
        for _ in 0..ACQUIRE_ATTEMPTS {
            match std::fs::OpenOptions::new().write(true).create_new(true).open(&lock_path) {
                Ok(mut f) => {
                    use std::io::Write as _;
                    f.write_all(std::process::id().to_string().as_bytes())?;
                    f.sync_all()?;
                    return Ok(Self { lock_path, released: AtomicBool::new(false), faults });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    match read_owner(&lock_path) {
                        Some(pid) if pid_alive(pid) => {
                            return Err(StorageError::WriterLocked { owner_pid: pid });
                        }
                        _ => {
                            // Stale (dead or unparseable owner): remove and
                            // retry. A concurrent taker may have removed it
                            // first — ignore the race, the retry decides.
                            owner = read_owner(&lock_path).unwrap_or(0);
                            let _ = std::fs::remove_file(&lock_path);
                        }
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        // Lost the takeover race repeatedly: report whoever holds it now.
        Err(StorageError::WriterLocked { owner_pid: read_owner(&lock_path).unwrap_or(owner) })
    }

    /// The lock file this guard owns.
    pub fn lock_path(&self) -> &Path {
        &self.lock_path
    }

    /// Releases the lock (idempotent). Returns false when a scripted
    /// [`crate::fault::SwapStage::LockRelease`] crash fired: the lock
    /// file was left on disk as a dead writer would leave it.
    pub fn release(&self) -> bool {
        if self.released.swap(true, Ordering::SeqCst) {
            return true;
        }
        if self.faults.as_ref().is_some_and(|p| p.lock_release_crashes()) {
            return false;
        }
        let _ = std::fs::remove_file(&self.lock_path);
        true
    }
}

impl Drop for WriterLock {
    fn drop(&mut self) {
        self.release();
    }
}

/// Parses the owner PID recorded in a lock file, if readable.
fn read_owner(lock_path: &Path) -> Option<u32> {
    let text = std::fs::read_to_string(lock_path).ok()?;
    text.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::SwapStage;

    fn temp_target(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rcube_lock_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_file(lock_path_for(&p));
        p
    }

    #[test]
    fn second_acquire_in_process_is_refused_typed() {
        let target = temp_target("second");
        let lock = WriterLock::acquire(&target).unwrap();
        let err = WriterLock::acquire(&target).unwrap_err();
        match err {
            StorageError::WriterLocked { owner_pid } => {
                assert_eq!(owner_pid, std::process::id());
            }
            other => panic!("expected WriterLocked, got {other:?}"),
        }
        assert!(lock.release());
        // Released: a fresh acquire succeeds.
        drop(WriterLock::acquire(&target).unwrap());
    }

    #[test]
    fn stale_lock_from_dead_pid_is_taken_over() {
        let target = temp_target("stale");
        let lock_path = lock_path_for(&target);
        // PIDs are capped at /proc/sys/kernel/pid_max (< 2^22 by default);
        // u32::MAX - 7 can never name a live process.
        std::fs::write(&lock_path, format!("{}", u32::MAX - 7)).unwrap();
        let lock = WriterLock::acquire(&target).unwrap();
        assert_eq!(read_owner(&lock_path), Some(std::process::id()));
        drop(lock);
        assert!(!lock_path.exists());
    }

    #[test]
    fn garbage_lock_contents_count_as_stale() {
        let target = temp_target("garbage");
        let lock_path = lock_path_for(&target);
        std::fs::write(&lock_path, b"not a pid").unwrap();
        drop(WriterLock::acquire(&target).unwrap());
        assert!(!lock_path.exists());
    }

    #[test]
    fn lock_release_crash_point_leaves_lock_file() {
        let target = temp_target("crash_release");
        let plan = FaultPlan::new();
        plan.crash_at_swap(SwapStage::LockRelease);
        let lock = WriterLock::acquire_guarded(&target, Some(Arc::clone(&plan))).unwrap();
        let lock_path = lock.lock_path().to_path_buf();
        assert!(!lock.release());
        assert!(plan.crashed());
        assert!(lock_path.exists(), "crashed release must leave the lock file");
        std::fs::remove_file(&lock_path).unwrap();
    }
}
