//! Bit-level serialization used by the Chapter 4 signature codings.
//!
//! The thesis' coding schemes (`BL`, `RL`, `PI`, `PC`) are defined on raw
//! binary strings — e.g. the run-length code writes `⌈log2(i+1)⌉-1` ones, a
//! zero, then `i` in binary. [`BitWriter`] and [`BitReader`] implement the
//! MSB-first bit stream those definitions assume.

/// Append-only MSB-first bit writer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits in the stream.
    len: usize,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a single bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let byte_idx = self.len / 8;
        if byte_idx == self.bytes.len() {
            self.bytes.push(0);
        }
        if bit {
            self.bytes[byte_idx] |= 1 << (7 - (self.len % 8));
        }
        self.len += 1;
    }

    /// Appends the low `width` bits of `value`, most significant first.
    pub fn push_bits(&mut self, value: u64, width: usize) {
        debug_assert!(width <= 64);
        for i in (0..width).rev() {
            self.push((value >> i) & 1 == 1);
        }
    }

    /// Appends `n` copies of `bit`.
    pub fn push_repeat(&mut self, bit: bool, n: usize) {
        for _ in 0..n {
            self.push(bit);
        }
    }

    /// Appends every bit produced by another writer.
    pub fn extend(&mut self, other: &BitWriter) {
        let reader = BitReader::new(other.as_bytes(), other.len());
        let mut r = reader;
        while let Some(b) = r.next_bit() {
            self.push(b);
        }
    }

    /// The underlying byte buffer (final partial byte zero-padded).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the writer, returning `(bytes, bit_len)`.
    pub fn into_parts(self) -> (Vec<u8>, usize) {
        (self.bytes, self.len)
    }
}

/// MSB-first bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    len: usize,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Reads up to `bit_len` bits from `bytes`.
    pub fn new(bytes: &'a [u8], bit_len: usize) -> Self {
        debug_assert!(bit_len <= bytes.len() * 8);
        Self { bytes, len: bit_len, pos: 0 }
    }

    /// Current read position in bits.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.len - self.pos
    }

    /// Reads one bit, or `None` at end of stream.
    #[inline]
    pub fn next_bit(&mut self) -> Option<bool> {
        if self.pos >= self.len {
            return None;
        }
        let byte = self.bytes[self.pos / 8];
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `width` bits as an MSB-first integer; `None` if fewer remain.
    pub fn read_bits(&mut self, width: usize) -> Option<u64> {
        debug_assert!(width <= 64);
        if self.remaining() < width {
            return None;
        }
        let mut v = 0u64;
        for _ in 0..width {
            v = (v << 1) | u64::from(self.next_bit().unwrap());
        }
        Some(v)
    }

    /// Advances past `n` bits without decoding them.
    pub fn skip(&mut self, n: usize) -> bool {
        if self.remaining() < n {
            return false;
        }
        self.pos += n;
        true
    }
}

/// Number of bits needed to represent values `0..m` (i.e. `⌈log2 m⌉`, with
/// the convention that one value still needs one bit slot in the thesis'
/// node headers: `bits_for(1) == 0`, `bits_for(2) == 1`, `bits_for(32) == 5`).
pub fn bits_for(m: usize) -> usize {
    if m <= 1 {
        0
    } else {
        (usize::BITS - (m - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.push(b);
        }
        let mut r = BitReader::new(w.as_bytes(), w.len());
        for &b in &pattern {
            assert_eq!(r.next_bit(), Some(b));
        }
        assert_eq!(r.next_bit(), None);
    }

    #[test]
    fn multi_bit_values_round_trip() {
        let mut w = BitWriter::new();
        w.push_bits(0b10110, 5);
        w.push_bits(1023, 10);
        w.push_bits(0, 3);
        let mut r = BitReader::new(w.as_bytes(), w.len());
        assert_eq!(r.read_bits(5), Some(0b10110));
        assert_eq!(r.read_bits(10), Some(1023));
        assert_eq!(r.read_bits(3), Some(0));
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn extend_concatenates_streams() {
        let mut a = BitWriter::new();
        a.push_bits(0b101, 3);
        let mut b = BitWriter::new();
        b.push_bits(0b0110, 4);
        a.extend(&b);
        let mut r = BitReader::new(a.as_bytes(), a.len());
        assert_eq!(r.read_bits(7), Some(0b1010110));
    }

    #[test]
    fn skip_and_position() {
        let mut w = BitWriter::new();
        w.push_bits(0xFF, 8);
        w.push_bits(0b01, 2);
        let mut r = BitReader::new(w.as_bytes(), w.len());
        assert!(r.skip(8));
        assert_eq!(r.position(), 8);
        assert_eq!(r.read_bits(2), Some(0b01));
        assert!(!r.skip(1));
    }

    #[test]
    fn bits_for_matches_log2_ceiling() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(32), 5);
        assert_eq!(bits_for(33), 6);
        assert_eq!(bits_for(204), 8);
    }

    #[test]
    fn push_repeat_writes_runs() {
        let mut w = BitWriter::new();
        w.push_repeat(true, 9);
        w.push_repeat(false, 3);
        let mut r = BitReader::new(w.as_bytes(), w.len());
        for _ in 0..9 {
            assert_eq!(r.next_bit(), Some(true));
        }
        for _ in 0..3 {
            assert_eq!(r.next_bit(), Some(false));
        }
        assert_eq!(r.next_bit(), None);
    }
}
