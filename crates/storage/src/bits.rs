//! Bit-level serialization used by the Chapter 4 signature codings.
//!
//! The thesis' coding schemes (`BL`, `RL`, `PI`, `PC`) are defined on raw
//! binary strings — e.g. the run-length code writes `⌈log2(i+1)⌉-1` ones, a
//! zero, then `i` in binary. [`BitWriter`] and [`BitReader`] implement the
//! MSB-first bit stream those definitions assume.

/// Append-only MSB-first bit writer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits in the stream.
    len: usize,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a single bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let byte_idx = self.len / 8;
        if byte_idx == self.bytes.len() {
            self.bytes.push(0);
        }
        if bit {
            self.bytes[byte_idx] |= 1 << (7 - (self.len % 8));
        }
        self.len += 1;
    }

    /// Appends the low `width` bits of `value`, most significant first.
    pub fn push_bits(&mut self, value: u64, width: usize) {
        debug_assert!(width <= 64);
        for i in (0..width).rev() {
            self.push((value >> i) & 1 == 1);
        }
    }

    /// Appends `n` copies of `bit`.
    pub fn push_repeat(&mut self, bit: bool, n: usize) {
        for _ in 0..n {
            self.push(bit);
        }
    }

    /// Appends every bit produced by another writer.
    pub fn extend(&mut self, other: &BitWriter) {
        let reader = BitReader::new(other.as_bytes(), other.len());
        let mut r = reader;
        while let Some(b) = r.next_bit() {
            self.push(b);
        }
    }

    /// The underlying byte buffer (final partial byte zero-padded).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the writer, returning `(bytes, bit_len)`.
    pub fn into_parts(self) -> (Vec<u8>, usize) {
        (self.bytes, self.len)
    }
}

/// MSB-first bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    len: usize,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Reads up to `bit_len` bits from `bytes`.
    pub fn new(bytes: &'a [u8], bit_len: usize) -> Self {
        debug_assert!(bit_len <= bytes.len() * 8);
        Self { bytes, len: bit_len, pos: 0 }
    }

    /// Current read position in bits.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.len - self.pos
    }

    /// Reads one bit, or `None` at end of stream.
    #[inline]
    pub fn next_bit(&mut self) -> Option<bool> {
        if self.pos >= self.len {
            return None;
        }
        let byte = self.bytes[self.pos / 8];
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `width` bits as an MSB-first integer; `None` if fewer remain.
    pub fn read_bits(&mut self, width: usize) -> Option<u64> {
        debug_assert!(width <= 64);
        if self.remaining() < width {
            return None;
        }
        let mut v = 0u64;
        for _ in 0..width {
            v = (v << 1) | u64::from(self.next_bit().unwrap());
        }
        Some(v)
    }

    /// Advances past `n` bits without decoding them.
    pub fn skip(&mut self, n: usize) -> bool {
        if self.remaining() < n {
            return false;
        }
        self.pos += n;
        true
    }
}

/// Number of bits needed to represent values `0..m` (i.e. `⌈log2 m⌉`, with
/// the convention that one value still needs one bit slot in the thesis'
/// node headers: `bits_for(1) == 0`, `bits_for(2) == 1`, `bits_for(32) == 5`).
pub fn bits_for(m: usize) -> usize {
    if m <= 1 {
        0
    } else {
        (usize::BITS - (m - 1).leading_zeros()) as usize
    }
}

/// A length-tracked bit array packed into `u64` words.
///
/// Signature nodes are at most one partition fanout `M` wide, so a node is
/// one or a few words; AND/OR/containment over whole nodes become
/// word-parallel bitwise ops plus `count_ones`, the same treatment the
/// posting-list engine gives tid bitmaps. The word array is LSB-first:
/// bit `i` lives in `words[i / 64]` at position `i % 64`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackedBits {
    words: Vec<u64>,
    len: usize,
}

impl PackedBits {
    /// An empty (zero-length) array.
    pub fn new() -> Self {
        Self::default()
    }

    /// An all-zeros array of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(64)], len }
    }

    /// An all-ones array of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut b = Self::zeros(len);
        for (i, w) in b.words.iter_mut().enumerate() {
            let remaining = len - i * 64;
            *w = if remaining >= 64 { u64::MAX } else { (1u64 << remaining) - 1 };
        }
        b
    }

    /// Builds from a `bool` slice (index `i` → bit `i`).
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut b = Self::zeros(bits.len());
        for (i, &set) in bits.iter().enumerate() {
            if set {
                b.words[i / 64] |= 1 << (i % 64);
            }
        }
        b
    }

    /// Expands back into a `bool` vector (round-trip/testing aid).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Number of bit slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the array has zero slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i`, or `false` past the end (trailing-zero semantics).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        i < self.len && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i`, growing the array as needed.
    pub fn set(&mut self, i: usize) {
        if i >= self.len {
            self.len = i + 1;
            self.words.resize(self.len.div_ceil(64), 0);
        }
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i` (no-op past the end).
    pub fn clear(&mut self, i: usize) {
        if i < self.len {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// True when any bit is set (word-parallel).
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Number of set bits (word-parallel `count_ones`).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing words (LSB-first; trailing slots past `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Positions of set bits, ascending (word-at-a-time trailing-zeros
    /// scan, not a per-bit loop).
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// Positions of clear bits below `len`, ascending.
    pub fn iter_zeros(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(|&i| !self.get(i))
    }

    /// Word-parallel OR; the result is as long as the longer operand.
    pub fn or(&self, other: &PackedBits) -> PackedBits {
        let len = self.len.max(other.len);
        let mut words = vec![0u64; len.div_ceil(64)];
        for (i, w) in words.iter_mut().enumerate() {
            *w = self.words.get(i).copied().unwrap_or(0) | other.words.get(i).copied().unwrap_or(0);
        }
        PackedBits { words, len }
    }

    /// Word-parallel AND; the result is as long as the shorter operand.
    pub fn and(&self, other: &PackedBits) -> PackedBits {
        let len = self.len.min(other.len);
        let mut words = vec![0u64; len.div_ceil(64)];
        for (i, w) in words.iter_mut().enumerate() {
            *w = self.words[i] & other.words[i];
        }
        PackedBits { words, len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.push(b);
        }
        let mut r = BitReader::new(w.as_bytes(), w.len());
        for &b in &pattern {
            assert_eq!(r.next_bit(), Some(b));
        }
        assert_eq!(r.next_bit(), None);
    }

    #[test]
    fn multi_bit_values_round_trip() {
        let mut w = BitWriter::new();
        w.push_bits(0b10110, 5);
        w.push_bits(1023, 10);
        w.push_bits(0, 3);
        let mut r = BitReader::new(w.as_bytes(), w.len());
        assert_eq!(r.read_bits(5), Some(0b10110));
        assert_eq!(r.read_bits(10), Some(1023));
        assert_eq!(r.read_bits(3), Some(0));
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn extend_concatenates_streams() {
        let mut a = BitWriter::new();
        a.push_bits(0b101, 3);
        let mut b = BitWriter::new();
        b.push_bits(0b0110, 4);
        a.extend(&b);
        let mut r = BitReader::new(a.as_bytes(), a.len());
        assert_eq!(r.read_bits(7), Some(0b1010110));
    }

    #[test]
    fn skip_and_position() {
        let mut w = BitWriter::new();
        w.push_bits(0xFF, 8);
        w.push_bits(0b01, 2);
        let mut r = BitReader::new(w.as_bytes(), w.len());
        assert!(r.skip(8));
        assert_eq!(r.position(), 8);
        assert_eq!(r.read_bits(2), Some(0b01));
        assert!(!r.skip(1));
    }

    #[test]
    fn bits_for_matches_log2_ceiling() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(32), 5);
        assert_eq!(bits_for(33), 6);
        assert_eq!(bits_for(204), 8);
    }

    #[test]
    fn packed_bits_round_trip_bools() {
        let bools: Vec<bool> = (0..130).map(|i| i % 3 == 0 || i % 7 == 0).collect();
        let packed = PackedBits::from_bools(&bools);
        assert_eq!(packed.len(), 130);
        assert_eq!(packed.to_bools(), bools);
        assert_eq!(packed.count_ones(), bools.iter().filter(|&&b| b).count());
        let ones: Vec<usize> = packed.iter_ones().collect();
        let expect: Vec<usize> =
            bools.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        assert_eq!(ones, expect);
        let zeros: Vec<usize> = packed.iter_zeros().collect();
        assert_eq!(zeros.len(), 130 - ones.len());
    }

    #[test]
    fn packed_bits_set_grows_and_get_is_trailing_zero() {
        let mut b = PackedBits::new();
        b.set(70);
        assert_eq!(b.len(), 71);
        assert!(b.get(70));
        assert!(!b.get(69));
        assert!(!b.get(500), "past-the-end reads are false");
        b.clear(70);
        assert!(!b.any());
    }

    #[test]
    fn packed_bits_word_parallel_ops() {
        let a = PackedBits::from_bools(&[true, true, false, true, false]);
        let b = PackedBits::from_bools(&[true, false, false, true]);
        let and = a.and(&b);
        assert_eq!(and.to_bools(), vec![true, false, false, true]);
        let or = a.or(&b);
        assert_eq!(or.to_bools(), vec![true, true, false, true, false]);
        // Ones/zeros constructors across a word boundary.
        let ones = PackedBits::ones(67);
        assert_eq!(ones.count_ones(), 67);
        assert!(ones.get(66) && !ones.get(67));
        assert_eq!(PackedBits::zeros(67).count_ones(), 0);
    }

    #[test]
    fn push_repeat_writes_runs() {
        let mut w = BitWriter::new();
        w.push_repeat(true, 9);
        w.push_repeat(false, 3);
        let mut r = BitReader::new(w.as_bytes(), w.len());
        for _ in 0..9 {
            assert_eq!(r.next_bit(), Some(true));
        }
        for _ in 0..3 {
            assert_eq!(r.next_bit(), Some(false));
        }
        assert_eq!(r.next_bit(), None);
    }
}
