//! The shard manifest: one small CRC-stamped file describing a
//! partitioned cube set.
//!
//! A sharded build splits a relation by tid range into N self-contained
//! cube files (each its own buffer pool, checksums, generations — the
//! ordinary format described in [`crate::format`]) plus one manifest
//! naming them. The manifest is the *only* coupling between shards: it
//! records, per shard, the cube file name (relative to the manifest's
//! directory, so the set relocates as a unit) and the global tid range
//! the shard serves. Opening a sharded cube = read manifest, validate
//! CRC and ranges, open each named file.
//!
//! # Layout (all integers little-endian)
//!
//! | offset | size | field                                         |
//! |--------|------|-----------------------------------------------|
//! | 0      | 4    | magic `b"RCSM"`                               |
//! | 4      | 2    | manifest version ([`MANIFEST_VERSION`])       |
//! | 6      | 1    | engine kind (1 = grid, 2 = signature)         |
//! | 7      | 1    | flags (reserved, zero)                        |
//! | 8      | 8    | shard count                                   |
//! | …      | …    | per shard: file name (u64-length-prefixed     |
//! |        |      | UTF-8), tid_lo u64, tid_hi u64 (exclusive),   |
//! |        |      | tuple count u64                               |
//! | end−4  | 4    | CRC-32 over every preceding byte              |
//!
//! # Versioning and open election
//!
//! Readers gate on the version field exactly like cube files do: an
//! unknown version is [`StorageError::UnsupportedVersion`], never a
//! guess at the layout. [`ShardManifest::save_to`] publishes through a
//! sibling temp file + fsync + atomic rename, so a crash mid-write
//! leaves either the old manifest or the new one — election at open is
//! therefore trivial (there is only ever one candidate), with the CRC
//! rejecting torn or bit-flipped content as a typed
//! [`StorageError::ChecksumMismatch`]. Per-shard durability remains the
//! cube files' own double-buffered superblock election.

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::backend::StorageError;
use crate::format::{crc32, ByteReader, ByteWriter};

/// Manifest file magic.
pub const MANIFEST_MAGIC: [u8; 4] = *b"RCSM";
/// Current manifest format version.
pub const MANIFEST_VERSION: u16 = 1;
/// Sanity cap on the shard count a manifest may claim.
pub const MAX_SHARDS: usize = 4096;

/// Which cube engine every shard in the set was built with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardEngineKind {
    /// Grid partition + neighborhood search (`GridRankingCube`).
    Grid,
    /// R-tree + signature cube (`SignatureCube`).
    Signature,
}

impl ShardEngineKind {
    fn to_u8(self) -> u8 {
        match self {
            ShardEngineKind::Grid => 1,
            ShardEngineKind::Signature => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, StorageError> {
        match v {
            1 => Ok(ShardEngineKind::Grid),
            2 => Ok(ShardEngineKind::Signature),
            _ => Err(StorageError::Malformed("unknown shard engine kind")),
        }
    }
}

/// One shard's row in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// Cube file name, relative to the manifest's directory.
    pub file: String,
    /// First global tid the shard serves.
    pub tid_lo: u64,
    /// One past the last global tid the shard serves.
    pub tid_hi: u64,
    /// Tuples stored in the shard (= `tid_hi - tid_lo`).
    pub tuples: u64,
}

/// The parsed, validated shard manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Engine every shard was built with.
    pub engine: ShardEngineKind,
    /// Shards in ascending tid order.
    pub shards: Vec<ShardEntry>,
}

impl ShardManifest {
    /// Serializes the manifest, CRC stamp included.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes_raw(&MANIFEST_MAGIC);
        w.put_u16(MANIFEST_VERSION);
        w.put_u8(self.engine.to_u8());
        w.put_u8(0);
        w.put_u64(self.shards.len() as u64);
        for s in &self.shards {
            w.put_bytes(s.file.as_bytes());
            w.put_u64(s.tid_lo);
            w.put_u64(s.tid_hi);
            w.put_u64(s.tuples);
        }
        let mut bytes = w.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }

    /// Parses and validates manifest bytes (magic, version, CRC, ranges).
    pub fn decode(bytes: &[u8]) -> Result<Self, StorageError> {
        if bytes.len() < 4 + 2 + 1 + 1 + 8 + 4 {
            return Err(StorageError::Malformed("shard manifest truncated"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != stored {
            return Err(StorageError::ChecksumMismatch { page: 0 });
        }
        let mut r = ByteReader::new(body);
        if r.take(4)? != MANIFEST_MAGIC {
            return Err(StorageError::BadMagic);
        }
        let version = u16::from_le_bytes(r.take(2)?.try_into().unwrap());
        if version != MANIFEST_VERSION {
            return Err(StorageError::UnsupportedVersion(version));
        }
        let engine = ShardEngineKind::from_u8(r.u8()?)?;
        let _flags = r.u8()?;
        let count = r.count(MAX_SHARDS)?;
        let mut shards = Vec::with_capacity(count);
        for _ in 0..count {
            let name = r.bytes()?;
            let file = std::str::from_utf8(name)
                .map_err(|_| StorageError::Malformed("shard file name is not UTF-8"))?
                .to_owned();
            let tid_lo = r.u64()?;
            let tid_hi = r.u64()?;
            let tuples = r.u64()?;
            shards.push(ShardEntry { file, tid_lo, tid_hi, tuples });
        }
        if r.remaining() != 0 {
            return Err(StorageError::Malformed("shard manifest has trailing bytes"));
        }
        let m = Self { engine, shards };
        m.validate()?;
        Ok(m)
    }

    /// Structural validation: at least one shard, contiguous ascending tid
    /// ranges starting at 0, tuple counts matching the ranges.
    pub fn validate(&self) -> Result<(), StorageError> {
        if self.shards.is_empty() {
            return Err(StorageError::Malformed("shard manifest names no shards"));
        }
        let mut next = 0u64;
        for s in &self.shards {
            if s.file.is_empty() || s.file.contains('/') || s.file.contains('\\') {
                return Err(StorageError::Malformed("shard file name must be a bare file name"));
            }
            if s.tid_lo != next || s.tid_hi < s.tid_lo {
                return Err(StorageError::Malformed("shard tid ranges must be contiguous"));
            }
            if s.tuples != s.tid_hi - s.tid_lo {
                return Err(StorageError::Malformed("shard tuple count disagrees with tid range"));
            }
            next = s.tid_hi;
        }
        Ok(())
    }

    /// Writes the manifest at `path` via temp file + fsync + atomic
    /// rename, so readers only ever see a complete manifest.
    pub fn save_to(&self, path: &Path) -> Result<(), StorageError> {
        self.validate()?;
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let bytes = self.encode();
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and validates the manifest at `path`.
    pub fn open_from(path: &Path) -> Result<Self, StorageError> {
        let bytes = std::fs::read(path)?;
        Self::decode(&bytes)
    }

    /// Absolute path of shard `i`'s cube file, given the manifest's path.
    pub fn shard_path(&self, manifest_path: &Path, i: usize) -> PathBuf {
        let dir = manifest_path.parent().unwrap_or_else(|| Path::new("."));
        dir.join(&self.shards[i].file)
    }

    /// Total tuples across all shards.
    pub fn total_tuples(&self) -> u64 {
        self.shards.iter().map(|s| s.tuples).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardManifest {
        ShardManifest {
            engine: ShardEngineKind::Grid,
            shards: vec![
                ShardEntry { file: "cars.shard0".into(), tid_lo: 0, tid_hi: 100, tuples: 100 },
                ShardEntry { file: "cars.shard1".into(), tid_lo: 100, tid_hi: 180, tuples: 80 },
            ],
        }
    }

    #[test]
    fn roundtrips() {
        let m = sample();
        let back = ShardManifest::decode(&m.encode()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn any_bit_flip_is_caught() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(ShardManifest::decode(&bad).is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn version_gate_is_typed() {
        let mut bytes = sample().encode();
        // Bump the version field and restamp the CRC so only the gate trips.
        bytes[4] = 0x7F;
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            ShardManifest::decode(&bytes),
            Err(StorageError::UnsupportedVersion(0x7F))
        ));
    }

    #[test]
    fn gapped_ranges_rejected() {
        let mut m = sample();
        m.shards[1].tid_lo = 101;
        assert!(matches!(m.validate(), Err(StorageError::Malformed(_))));
    }

    #[test]
    fn save_open_roundtrip_and_atomicity() {
        let dir = std::env::temp_dir().join(format!("rcsm_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("set.manifest");
        let m = sample();
        m.save_to(&path).unwrap();
        assert_eq!(ShardManifest::open_from(&path).unwrap(), m);
        // Re-publish over the live manifest: readers never see a partial file.
        let mut m2 = m.clone();
        m2.shards[1].file = "cars.shard1b".into();
        m2.save_to(&path).unwrap();
        assert_eq!(ShardManifest::open_from(&path).unwrap(), m2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
