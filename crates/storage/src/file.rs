//! The file-backed page store: one cube file, checksummed pages, a real
//! buffer pool, crash-safe generational commits — built to be hammered
//! by concurrent readers while a writer publishes new generations.
//!
//! Layout is defined in [`crate::format`]: two superblock slots on pages
//! 0–1, CRC-checked object pages from page 2, and an allocation bitmap
//! appended with every commit. A commit (`flush`) appends the map, syncs,
//! stamps the *inactive* slot with the next generation number and syncs
//! again; opening elects the valid slot with the highest generation, so a
//! crash at any write boundary reopens on a fully committed generation.
//! Every page is validated (type, length, CRC) *before* its bytes are
//! handed out, so a truncated or bit-flipped file surfaces as a typed
//! [`StorageError`] instead of a wrong answer.
//!
//! # Concurrency
//!
//! The read path holds **no lock on the file handle**: pages are fetched
//! with positional reads ([`IoMode::Positional`], `pread` on unix;
//! [`IoMode::SeekLocked`] keeps correctness elsewhere with a mutex around
//! the seek+access pair), metadata lives in atomics, and cached frames
//! sit in a lock-striped sharded [`BufferPool`]. A read-only handle is
//! pinned to the generation it elected at open: later commits append
//! pages past its horizon and stamp the *other* slot, so pinned readers
//! keep streaming their generation byte-identically with no coordination.
//! Writers (`put` / `overwrite` / `flush`) serialize on one writer mutex;
//! committed pages are immutable ([`StorageError::ImmutableGeneration`]
//! guards them), making the file single-writer, many-reader with MVCC
//! page publishing (see the "Generations" section of [`crate::format`]).
//!
//! Reads go through the [`BufferPool`] holding assembled object frames
//! weighted by their covering page count: a pool hit charges only logical
//! reads against the metering [`DiskSim`], a miss reads and verifies the
//! covering pages, charges physical reads, and admits the frame under LRU
//! eviction — the cost model of the in-memory simulator, now with the
//! bytes actually coming off disk.
//!
//! # Fault injection
//!
//! The `*_faulted` constructors attach a [`FaultPlan`] that scripts
//! faults at the raw page-I/O boundary (torn/dropped writes, `ENOSPC`,
//! transient `EIO`, sticky bit flips); the crash-recovery suite drives
//! every write boundary of a commit through it.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::backend::{PageBackend, StorageError};
use crate::buffer::{BufferPool, PoolStats};
use crate::disk::{DiskSim, PageId};
use crate::fault::{FaultPlan, SwapStage, WriteOutcome};
use crate::format::{
    decode_page, encode_page, PageType, Superblock, DATA_START, FLAG_CONTINUES, MAX_PAGE_SIZE,
    MIN_PAGE_SIZE, NO_PAGE, PAGE_HEADER, SUPERBLOCK_LEN,
};
use crate::lock::WriterLock;
use crate::stats::IoStats;

/// Default buffer-pool capacity for file-backed stores (pages), matching
/// the simulator's 256-page (1 MB at 4 KB) default.
pub const DEFAULT_POOL_PAGES: usize = 256;

/// How a [`FileBackend`] performs raw page I/O.
///
/// Both modes are always compiled, so the fallback is *tested* on every
/// platform instead of assumed on the exotic ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// Positional syscalls (`pread`/`pwrite`); no shared cursor, no lock.
    /// Only available on unix — the default there.
    Positional,
    /// A mutex around the seek+access pair: serializes raw I/O (but
    /// nothing above it). The default — and only — mode off unix.
    SeekLocked,
}

impl Default for IoMode {
    fn default() -> Self {
        if cfg!(unix) {
            Self::Positional
        } else {
            Self::SeekLocked
        }
    }
}

/// A file read/written at absolute offsets, shareable across threads
/// without a handle lock in [`IoMode::Positional`].
#[derive(Debug)]
struct PagedFile {
    file: File,
    mode: IoMode,
    /// Guards seek+access in [`IoMode::SeekLocked`]; unused otherwise.
    cursor: Mutex<()>,
}

impl PagedFile {
    fn new(file: File, mode: IoMode) -> Self {
        // Off unix there is no positional syscall to call: force the lock.
        let mode = if cfg!(unix) { mode } else { IoMode::SeekLocked };
        Self { file, mode, cursor: Mutex::new(()) }
    }

    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        #[cfg(unix)]
        if self.mode == IoMode::Positional {
            return std::os::unix::fs::FileExt::read_exact_at(&self.file, buf, offset);
        }
        use std::io::{Read, Seek, SeekFrom};
        let _guard = self.cursor.lock().unwrap();
        let mut f = &self.file;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }

    fn write_all_at(&self, buf: &[u8], offset: u64) -> std::io::Result<()> {
        #[cfg(unix)]
        if self.mode == IoMode::Positional {
            return std::os::unix::fs::FileExt::write_all_at(&self.file, buf, offset);
        }
        use std::io::{Seek, SeekFrom, Write};
        let _guard = self.cursor.lock().unwrap();
        let mut f = &self.file;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(buf)
    }

    fn sync_all(&self) -> std::io::Result<()> {
        self.file.sync_all()
    }
}

/// Construction knobs shared by the `create`/`open` families.
#[derive(Debug, Clone, Default)]
pub struct FileOptions {
    /// Buffer-pool capacity in pages (0 = uncached).
    pub pool_pages: usize,
    /// Raw-I/O strategy; [`IoMode::default`] picks positional on unix.
    pub io_mode: IoMode,
    /// Optional scripted media faults (crash/corruption harnesses).
    pub faults: Option<Arc<FaultPlan>>,
}

impl FileOptions {
    pub fn with_pool(pool_pages: usize) -> Self {
        Self { pool_pages, ..Self::default() }
    }
}

/// A single-file page store with generational commits (see module docs).
#[derive(Debug)]
pub struct FileBackend {
    file: PagedFile,
    page_size: usize,
    read_only: bool,
    /// Pages in the file visible to this handle, superblock slots
    /// included. Readers load it lock-free; writers publish (Release)
    /// only after the covered pages are written.
    page_count: AtomicU64,
    /// Pages covered by the last committed generation: everything below
    /// is immutable, patched only by COW appends.
    committed_pages: AtomicU64,
    /// Generation this handle last committed (writable) or elected at
    /// open (read-only).
    generation: AtomicU64,
    /// Total object payload bytes (materialized-size metric).
    total_bytes: AtomicU64,
    /// Stored objects (catalog excluded).
    object_count: AtomicU64,
    /// Catalog first page, [`NO_PAGE`] = none.
    catalog_first: AtomicU64,
    /// Metadata changed since the last commit.
    dirty: AtomicBool,
    /// Raw page writes issued by this handle (commit-cost metric: a
    /// patch commit must write strictly fewer pages than a full
    /// rematerialization).
    pages_written: AtomicU64,
    /// Pages retired by COW maintenance — unreachable from the next
    /// generation, reclaimable by a vacuum pass.
    retired_pages: AtomicU64,
    /// first page → object payload length, learned on put and first read.
    sizes: RwLock<HashMap<u64, u32>>,
    /// Sharded frame cache; internally synchronized.
    pool: BufferPool,
    /// Serializes mutators (put / overwrite / flush). Never taken on the
    /// read path.
    writer: Mutex<()>,
    /// Scripted media faults, if attached.
    faults: Option<Arc<FaultPlan>>,
    /// Cross-process writer exclusion: writable handles hold the sibling
    /// `<path>.lock` file until drop ([`crate::lock::WriterLock`]);
    /// read-only handles hold `None`. Pure RAII — never read.
    _lock: Option<WriterLock>,
}

/// Decode outcome for each superblock slot — either may independently
/// be torn or stale, so both results travel together to the election.
type SlotPair = (Result<Superblock, StorageError>, Result<Superblock, StorageError>);

impl FileBackend {
    /// Creates a fresh cube file at `path` (truncating any existing file)
    /// with the given page size and buffer-pool capacity in pages.
    pub fn create(
        path: impl AsRef<Path>,
        page_size: usize,
        pool_pages: usize,
    ) -> Result<Self, StorageError> {
        Self::create_with(path, page_size, FileOptions::with_pool(pool_pages))
    }

    /// [`Self::create`] with a scripted media-fault plan attached.
    pub fn create_faulted(
        path: impl AsRef<Path>,
        page_size: usize,
        pool_pages: usize,
        faults: Arc<FaultPlan>,
    ) -> Result<Self, StorageError> {
        Self::create_with(
            path,
            page_size,
            FileOptions { pool_pages, faults: Some(faults), ..FileOptions::default() },
        )
    }

    /// Creates a fresh cube file with explicit [`FileOptions`].
    pub fn create_with(
        path: impl AsRef<Path>,
        page_size: usize,
        opts: FileOptions,
    ) -> Result<Self, StorageError> {
        if !(MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size) {
            return Err(StorageError::BadLength { page: 0, len: page_size, max: MAX_PAGE_SIZE });
        }
        // Writer lock before the truncating open: a second process must
        // fail fast instead of truncating a file someone is writing.
        let lock = WriterLock::acquire(path.as_ref())?;
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        let backend = Self {
            file: PagedFile::new(file, opts.io_mode),
            page_size,
            read_only: false,
            page_count: AtomicU64::new(DATA_START),
            committed_pages: AtomicU64::new(DATA_START),
            generation: AtomicU64::new(0),
            total_bytes: AtomicU64::new(0),
            object_count: AtomicU64::new(0),
            catalog_first: AtomicU64::new(NO_PAGE),
            dirty: AtomicBool::new(true),
            pages_written: AtomicU64::new(0),
            retired_pages: AtomicU64::new(0),
            sizes: RwLock::new(HashMap::new()),
            pool: BufferPool::new(opts.pool_pages),
            writer: Mutex::new(()),
            faults: opts.faults,
            _lock: Some(lock),
        };
        // Stamp generation 0 into slot 0 and zero slot 1, so a crash
        // before the first commit still leaves an identifiable file with
        // an unambiguous election.
        let sb = Superblock {
            page_size: page_size as u32,
            page_count: DATA_START,
            catalog_first: None,
            total_bytes: 0,
            object_count: 0,
            alloc_first: None,
            alloc_pages: 0,
            generation: 0,
            retired_pages: 0,
        };
        let mut slot = vec![0u8; page_size];
        sb.encode(&mut slot);
        backend.write_page_raw(0, &slot)?;
        let zeros = vec![0u8; page_size];
        backend.write_page_raw(1, &zeros)?;
        Ok(backend)
    }

    /// Opens an existing cube file read-only on its newest committed
    /// generation, validating the elected superblock slot (magic, CRC,
    /// version, page-size bounds), the file length against the recorded
    /// page count, and the allocation map.
    pub fn open(path: impl AsRef<Path>, pool_pages: usize) -> Result<Self, StorageError> {
        Self::open_impl(path, FileOptions::with_pool(pool_pages), false, false)
    }

    /// [`Self::open`] with explicit [`FileOptions`].
    pub fn open_with(path: impl AsRef<Path>, opts: FileOptions) -> Result<Self, StorageError> {
        Self::open_impl(path, opts, false, false)
    }

    /// Opens with the default pool capacity.
    pub fn open_default(path: impl AsRef<Path>) -> Result<Self, StorageError> {
        Self::open(path, DEFAULT_POOL_PAGES)
    }

    /// Opens read-only pinned on the *previous* generation (the losing,
    /// still-valid slot) — the scrub path verifies it before rolling the
    /// open pointer back.
    pub fn open_previous(path: impl AsRef<Path>, pool_pages: usize) -> Result<Self, StorageError> {
        Self::open_impl(path, FileOptions::with_pool(pool_pages), false, true)
    }

    /// Opens an existing cube file for writing: elects the newest
    /// generation and appends after it; [`Self::flush`] commits the next
    /// generation into the inactive slot. Exactly one writable handle
    /// may exist per file, enforced across processes by the sibling
    /// `<path>.lock` file — a second writer fails fast with
    /// [`StorageError::WriterLocked`], and stale locks left by dead
    /// writers are taken over (see [`crate::lock`]).
    pub fn open_writable(path: impl AsRef<Path>, pool_pages: usize) -> Result<Self, StorageError> {
        Self::open_impl(path, FileOptions::with_pool(pool_pages), true, false)
    }

    /// [`Self::open_writable`] with a scripted media-fault plan.
    pub fn open_writable_faulted(
        path: impl AsRef<Path>,
        pool_pages: usize,
        faults: Arc<FaultPlan>,
    ) -> Result<Self, StorageError> {
        let opts = FileOptions { pool_pages, faults: Some(faults), ..FileOptions::default() };
        Self::open_impl(path, opts, true, false)
    }

    /// Reads both superblock slot heads. Slot 1 lives at `page_size`
    /// bytes, which normally comes from slot 0; when slot 0 is torn the
    /// page-size field is recovered from its raw bytes (both old and new
    /// images agree on it — it never changes after create) with a
    /// power-of-two scan as the last resort.
    fn read_slots(file: &PagedFile) -> Result<SlotPair, StorageError> {
        let mut head0 = [0u8; SUPERBLOCK_LEN];
        file.read_exact_at(&mut head0, 0).map_err(|_| StorageError::BadMagic)?;
        let c0 = Superblock::decode_slot(&head0, 0);
        let mut candidates: Vec<usize> = Vec::new();
        match &c0 {
            Ok(sb) => candidates.push(sb.page_size as usize),
            Err(_) => {
                let hinted = u32::from_le_bytes(head0[12..16].try_into().unwrap()) as usize;
                if (MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&hinted) {
                    candidates.push(hinted);
                }
                let mut p = MIN_PAGE_SIZE;
                while p <= MAX_PAGE_SIZE {
                    if !candidates.contains(&p) {
                        candidates.push(p);
                    }
                    p *= 2;
                }
            }
        }
        let mut c1: Result<Superblock, StorageError> = Err(StorageError::BadMagic);
        for ps in candidates {
            let mut head1 = [0u8; SUPERBLOCK_LEN];
            if file.read_exact_at(&mut head1, ps as u64).is_ok() {
                if let Ok(sb) = Superblock::decode_slot(&head1, 1) {
                    if sb.page_size as usize == ps {
                        c1 = Ok(sb);
                        break;
                    }
                }
            }
        }
        Ok((c0, c1))
    }

    fn open_impl(
        path: impl AsRef<Path>,
        opts: FileOptions,
        writable: bool,
        previous: bool,
    ) -> Result<Self, StorageError> {
        let lock = if writable { Some(WriterLock::acquire(path.as_ref())?) } else { None };
        let file = OpenOptions::new().read(true).write(writable).open(path)?;
        let file = PagedFile::new(file, opts.io_mode);
        let (c0, c1) = Self::read_slots(&file)?;
        let elected = match (&c0, &c1) {
            (Ok(a), Ok(b)) => {
                if a.generation >= b.generation {
                    (*a, 0u64)
                } else {
                    (*b, 1)
                }
            }
            (Ok(a), Err(_)) => (*a, 0),
            (Err(_), Ok(b)) => (*b, 1),
            (Err(_), Err(_)) => return Err(c0.unwrap_err()),
        };
        let (sb, slot) = if previous {
            match (c0, c1, elected.1) {
                (Ok(older), Ok(_), 1) => (older, 0u64),
                (Ok(_), Ok(older), 0) => (older, 1),
                _ => return Err(StorageError::Malformed("no previous generation to open")),
            }
        } else {
            elected
        };
        let page_size = sb.page_size as usize;
        let file_len = file.file.metadata()?.len();
        let need = sb
            .page_count
            .checked_mul(page_size as u64)
            .ok_or(StorageError::Malformed("page count overflows the file size"))?;
        if file_len < need {
            return Err(StorageError::TruncatedObject { page: sb.page_count });
        }
        // The slot CRC covers its 80 serialized bytes; the rest of the
        // elected slot page is zero padding by construction, so verify it
        // — a bit flip anywhere on the live slot page must be detected
        // like on any other page. (The losing slot may be torn garbage;
        // that is the redundancy the double buffer exists for.)
        let mut slot_page = vec![0u8; page_size];
        file.read_exact_at(&mut slot_page, slot * page_size as u64)
            .map_err(|_| StorageError::TruncatedObject { page: slot })?;
        if slot_page[SUPERBLOCK_LEN..].iter().any(|&b| b != 0) {
            return Err(StorageError::ChecksumMismatch { page: slot });
        }
        let backend = Self {
            file,
            page_size,
            read_only: !writable,
            page_count: AtomicU64::new(sb.page_count),
            committed_pages: AtomicU64::new(sb.page_count),
            generation: AtomicU64::new(sb.generation),
            total_bytes: AtomicU64::new(sb.total_bytes),
            object_count: AtomicU64::new(sb.object_count),
            catalog_first: AtomicU64::new(sb.catalog_first.unwrap_or(NO_PAGE)),
            dirty: AtomicBool::new(false),
            pages_written: AtomicU64::new(0),
            // Seed from the elected slot: the vacuum watermark survives
            // reopen instead of resetting to zero each restart.
            retired_pages: AtomicU64::new(sb.retired_pages),
            sizes: RwLock::new(HashMap::new()),
            pool: BufferPool::new(opts.pool_pages),
            writer: Mutex::new(()),
            faults: opts.faults,
            _lock: lock,
        };
        backend.verify_alloc_map(&sb)?;
        Ok(backend)
    }

    /// Reads and elects the newest valid superblock without constructing
    /// a backend — no buffer pool, no writer lock, three page-head reads.
    /// The maintenance scheduler's cheap watermark poll.
    pub fn peek_superblock(path: impl AsRef<Path>) -> Result<Superblock, StorageError> {
        let file = OpenOptions::new().read(true).open(path)?;
        let file = PagedFile::new(file, IoMode::default());
        let (c0, c1) = Self::read_slots(&file)?;
        match (c0, c1) {
            (Ok(a), Ok(b)) => Ok(if a.generation >= b.generation { a } else { b }),
            (Ok(a), Err(_)) => Ok(a),
            (Err(_), Ok(b)) => Ok(b),
            (Err(e0), Err(_)) => Err(e0),
        }
    }

    /// Atomically publishes `temp` — a complete, committed cube file —
    /// over `target`: fsync the temp contents, `rename` it over the
    /// target (the atomic publish point), fsync the parent directory.
    /// Steps 3–5 of the swap protocol in [`crate::format`] § *Locking &
    /// swap protocol*; the caller must hold the target's
    /// [`WriterLock`] for the whole window. Readers pinned on the old
    /// file keep serving it byte-identically through their descriptors;
    /// every open after the rename elects the new file.
    pub fn publish_swap(
        temp: &Path,
        target: &Path,
        faults: Option<&Arc<FaultPlan>>,
    ) -> Result<(), StorageError> {
        if let Some(plan) = faults {
            plan.on_swap(SwapStage::TempSync).map_err(StorageError::Io)?;
        }
        File::open(temp)?.sync_all()?;
        if let Some(plan) = faults {
            plan.on_swap(SwapStage::Rename).map_err(StorageError::Io)?;
        }
        std::fs::rename(temp, target)?;
        // Make the rename itself durable where the platform allows
        // syncing a directory handle (unix); elsewhere the data syncs
        // above still guarantee a valid file under either name.
        #[cfg(unix)]
        if let Some(dir) = target.parent() {
            if !dir.as_os_str().is_empty() {
                File::open(dir)?.sync_all()?;
            }
        }
        Ok(())
    }

    /// Rolls the file back one generation: verifies the previous slot is
    /// valid, then zeroes the newest slot and syncs, so the next open
    /// elects the previous generation. Returns the generation now live.
    /// Fails with [`StorageError::Malformed`] when there is no valid
    /// previous generation to fall back to.
    ///
    /// Call only with no writable handle open on the file.
    pub fn rollback_latest(path: impl AsRef<Path>) -> Result<u64, StorageError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let file = PagedFile::new(file, IoMode::default());
        let (c0, c1) = Self::read_slots(&file)?;
        let (survivor, doomed_slot) = match (c0, c1) {
            (Ok(a), Ok(b)) => {
                if a.generation >= b.generation {
                    (b, 0u64)
                } else {
                    (a, 1)
                }
            }
            _ => return Err(StorageError::Malformed("no previous generation to roll back to")),
        };
        let zeros = vec![0u8; survivor.page_size as usize];
        file.write_all_at(&zeros, doomed_slot * survivor.page_size as u64)?;
        file.sync_all()?;
        Ok(survivor.generation)
    }

    /// Page size of this file.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Per-shard buffer-pool occupancy and hit/miss/eviction counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Raw page writes issued by this handle (superblock stamps and
    /// allocation maps included) — the patch-vs-rematerialize commit
    /// cost metric.
    pub fn pages_written(&self) -> u64 {
        self.pages_written.load(Ordering::Relaxed)
    }

    /// Pages retired by COW maintenance, unreachable from the next
    /// generation: what a vacuum (compacting rewrite) would reclaim.
    pub fn reclaimable_pages(&self) -> u64 {
        self.retired_pages.load(Ordering::Relaxed)
    }

    /// Per-page payload capacity.
    fn cap(&self) -> usize {
        self.page_size - PAGE_HEADER
    }

    /// Pages covering an object of `len` payload bytes (the first page
    /// spends 4 payload bytes on the length prefix).
    fn pages_for_object(&self, len: usize) -> usize {
        (len + 4).div_ceil(self.cap()).max(1)
    }

    fn page_offset(&self, page: u64) -> Result<u64, StorageError> {
        page.checked_mul(self.page_size as u64)
            .ok_or(StorageError::OutOfBounds { page, page_count: u64::MAX / self.page_size as u64 })
    }

    fn read_page_raw(&self, page: u64) -> Result<Vec<u8>, StorageError> {
        let mut buf = vec![0u8; self.page_size];
        let offset = self.page_offset(page)?;
        if let Some(plan) = &self.faults {
            // Fault check first so a scripted transient EIO fires even on
            // pages the pool would otherwise have absorbed below.
            self.file
                .read_exact_at(&mut buf, offset)
                .map_err(|_| StorageError::TruncatedObject { page })?;
            plan.on_read(offset, &mut buf).map_err(StorageError::Io)?;
        } else {
            self.file
                .read_exact_at(&mut buf, offset)
                .map_err(|_| StorageError::TruncatedObject { page })?;
        }
        Ok(buf)
    }

    fn write_page_raw(&self, page: u64, buf: &[u8]) -> Result<(), StorageError> {
        debug_assert_eq!(buf.len(), self.page_size);
        let offset = self.page_offset(page)?;
        self.pages_written.fetch_add(1, Ordering::Relaxed);
        match &self.faults {
            None => self.file.write_all_at(buf, offset)?,
            Some(plan) => match plan.on_write().map_err(StorageError::Io)? {
                WriteOutcome::Persist => self.file.write_all_at(buf, offset)?,
                WriteOutcome::Prefix(keep) => {
                    let keep = keep.min(buf.len());
                    self.file.write_all_at(&buf[..keep], offset)?;
                }
                WriteOutcome::Drop => {}
            },
        }
        Ok(())
    }

    /// Writes `data` as an object over `pages` consecutive pages starting
    /// at `first` and returns the covering page count.
    fn write_object_pages(&self, first: u64, data: &[u8]) -> Result<usize, StorageError> {
        let cap = self.cap();
        let pages = self.pages_for_object(data.len());
        let mut page_buf = vec![0u8; self.page_size];
        // First page: [total_len u32][data prefix].
        let head_take = data.len().min(cap - 4);
        let mut payload = Vec::with_capacity(4 + head_take);
        payload.extend_from_slice(&(data.len() as u32).to_le_bytes());
        payload.extend_from_slice(&data[..head_take]);
        let flags = if pages > 1 { FLAG_CONTINUES } else { 0 };
        encode_page(&mut page_buf, PageType::ObjFirst, flags, &payload);
        self.write_page_raw(first, &page_buf)?;
        // Continuation pages: raw payload runs.
        let mut off = head_take;
        for i in 1..pages {
            let take = (data.len() - off).min(cap);
            let flags = if i + 1 < pages { FLAG_CONTINUES } else { 0 };
            encode_page(&mut page_buf, PageType::ObjCont, flags, &data[off..off + take]);
            self.write_page_raw(first + i as u64, &page_buf)?;
            off += take;
        }
        debug_assert_eq!(off, data.len());
        Ok(pages)
    }

    /// Records an object's payload length (skips the write lock when the
    /// size is already known).
    fn learn_size(&self, first: u64, len: u32) {
        if self.sizes.read().unwrap().get(&first) != Some(&len) {
            self.sizes.write().unwrap().insert(first, len);
        }
    }

    /// Reads, validates and assembles the object rooted at `first`.
    /// Returns the payload and its covering page count. Lock-free in
    /// positional mode: positional page reads, atomic bounds check.
    fn read_object(&self, first: u64) -> Result<(Arc<[u8]>, usize), StorageError> {
        let page_count = self.page_count.load(Ordering::Acquire);
        if first < DATA_START || first >= page_count {
            return Err(StorageError::OutOfBounds { page: first, page_count });
        }
        let head = self.read_page_raw(first)?;
        let view = decode_page(&head, first)?;
        if view.ptype != PageType::ObjFirst {
            return Err(StorageError::BadPageType { page: first, found: view.ptype as u8 });
        }
        if view.payload.len() < 4 {
            return Err(StorageError::BadLength { page: first, len: view.payload.len(), max: 4 });
        }
        let total_len = u32::from_le_bytes(view.payload[0..4].try_into().unwrap()) as usize;
        let pages = self.pages_for_object(total_len);
        if first + pages as u64 > page_count {
            return Err(StorageError::TruncatedObject { page: first + pages as u64 - 1 });
        }
        let mut data = Vec::with_capacity(total_len);
        data.extend_from_slice(&view.payload[4..]);
        let mut continues = view.continues;
        for i in 1..pages {
            if !continues {
                return Err(StorageError::TruncatedObject { page: first + i as u64 - 1 });
            }
            let raw = self.read_page_raw(first + i as u64)?;
            let v = decode_page(&raw, first + i as u64)?;
            if v.ptype != PageType::ObjCont {
                return Err(StorageError::BadPageType {
                    page: first + i as u64,
                    found: v.ptype as u8,
                });
            }
            data.extend_from_slice(v.payload);
            continues = v.continues;
        }
        if data.len() != total_len || continues {
            return Err(StorageError::BadLength { page: first, len: data.len(), max: total_len });
        }
        self.learn_size(first, total_len as u32);
        Ok((data.into(), pages))
    }

    /// Pool-aware fetch; charges `stats` (when metering) per covering page.
    fn fetch(&self, first: PageId, stats: Option<&IoStats>) -> Result<Arc<[u8]>, StorageError> {
        if let Some(frame) = self.pool.get(first) {
            if let Some(stats) = stats {
                for _ in 0..self.pages_for_object(frame.len()) {
                    stats.record_read(true);
                }
            }
            return Ok(frame);
        }
        let (frame, pages) = self.read_object(first.0)?;
        if let Some(stats) = stats {
            for _ in 0..pages {
                stats.record_read(false);
            }
        }
        self.pool.insert(first, Arc::clone(&frame), pages);
        Ok(frame)
    }

    /// Validates the allocation bitmap referenced by the superblock:
    /// every map page passes CRC/type checks and every page below
    /// `page_count` is marked allocated.
    fn verify_alloc_map(&self, sb: &Superblock) -> Result<(), StorageError> {
        let Some(alloc_first) = sb.alloc_first else {
            return Ok(()); // never committed with a map (fresh/empty file)
        };
        let mut bits: Vec<u8> = Vec::new();
        for i in 0..sb.alloc_pages as u64 {
            let raw = self.read_page_raw(alloc_first + i)?;
            let v = decode_page(&raw, alloc_first + i)?;
            if v.ptype != PageType::AllocMap {
                return Err(StorageError::BadPageType {
                    page: alloc_first + i,
                    found: v.ptype as u8,
                });
            }
            bits.extend_from_slice(v.payload);
        }
        for page in 0..sb.page_count {
            let (byte, bit) = ((page / 8) as usize, page % 8);
            if byte >= bits.len() || bits[byte] >> bit & 1 == 0 {
                return Err(StorageError::Malformed("allocation map misses a live page"));
            }
        }
        Ok(())
    }
}

impl PageBackend for FileBackend {
    fn put(&self, disk: &DiskSim, data: Vec<u8>) -> Result<PageId, StorageError> {
        if self.read_only {
            return Err(StorageError::ReadOnly);
        }
        let _w = self.writer.lock().unwrap();
        let first = self.page_count.load(Ordering::Relaxed);
        let pages = self.write_object_pages(first, &data)?;
        // Publish the new bound only after the pages exist on disk, so a
        // concurrent reader racing the append never reads unwritten pages.
        self.page_count.store(first + pages as u64, Ordering::Release);
        self.total_bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.object_count.fetch_add(1, Ordering::Relaxed);
        self.dirty.store(true, Ordering::Relaxed);
        self.learn_size(first, data.len() as u32);
        let stats = disk.stats();
        for _ in 0..pages {
            stats.record_write();
        }
        let frame: Arc<[u8]> = data.into();
        self.pool.insert(PageId(first), frame, pages);
        Ok(PageId(first))
    }

    fn overwrite(&self, disk: &DiskSim, first: PageId, data: Vec<u8>) -> Result<(), StorageError> {
        if self.read_only {
            return Err(StorageError::ReadOnly);
        }
        let _w = self.writer.lock().unwrap();
        // Committed pages are immutable: readers pinned on the committed
        // generation stream them lock-free, so patches must go through
        // COW appends. Only objects appended since the last commit (owned
        // outright by the unpublished generation) may be rewritten.
        if first.0 < self.committed_pages.load(Ordering::Relaxed) {
            return Err(StorageError::ImmutableGeneration { page: first.0 });
        }
        // The new bytes must fit the originally allocated span; shrinking
        // leaves orphaned-but-allocated tail pages, which is fine for the
        // append-only writer.
        let old_len = match self.sizes.read().unwrap().get(&first.0).copied() {
            Some(l) => l as usize,
            None => self.read_object(first.0)?.0.len(),
        };
        let old_pages = self.pages_for_object(old_len);
        let new_pages = self.pages_for_object(data.len());
        if new_pages > old_pages {
            return Err(StorageError::BadLength {
                page: first.0,
                len: data.len(),
                max: old_pages * self.cap() - 4,
            });
        }
        self.write_object_pages(first.0, &data)?;
        let stats = disk.stats();
        for _ in 0..new_pages {
            stats.record_write();
        }
        self.total_bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.total_bytes.fetch_sub(old_len as u64, Ordering::Relaxed);
        self.dirty.store(true, Ordering::Relaxed);
        self.learn_size(first.0, data.len() as u32);
        let frame: Arc<[u8]> = data.into();
        self.pool.insert(first, frame, new_pages);
        Ok(())
    }

    fn get(&self, disk: &DiskSim, first: PageId) -> Result<Arc<[u8]>, StorageError> {
        self.fetch(first, Some(&disk.stats()))
    }

    fn peek(&self, first: PageId) -> Result<Arc<[u8]>, StorageError> {
        self.fetch(first, None)
    }

    fn size_of(&self, first: PageId) -> Option<usize> {
        self.sizes.read().unwrap().get(&first.0).map(|&l| l as usize)
    }

    fn total_bytes(&self) -> usize {
        self.total_bytes.load(Ordering::Relaxed) as usize
    }

    fn object_count(&self) -> usize {
        self.object_count.load(Ordering::Relaxed) as usize
    }

    fn clear_cache(&self) {
        self.pool.clear();
    }

    /// Commits the current state as the next generation: appends the
    /// allocation map, syncs data durable, stamps the *inactive*
    /// superblock slot with `generation + 1`, syncs again. The single
    /// slot write is the atomic publish point — a crash on either side
    /// of it reopens on a fully committed generation.
    fn flush(&self) -> Result<(), StorageError> {
        if self.read_only {
            return Ok(());
        }
        let _w = self.writer.lock().unwrap();
        if !self.dirty.load(Ordering::Relaxed) {
            return Ok(());
        }
        // Allocation bitmap over all pages including the map itself:
        // find the smallest map that covers `page_count + map_pages` bits.
        let page_count = self.page_count.load(Ordering::Relaxed);
        let cap_bits = self.cap() * 8;
        let mut map_pages = 1usize;
        while (page_count as usize + map_pages) > map_pages * cap_bits {
            map_pages += 1;
        }
        let alloc_first = page_count;
        let final_count = page_count + map_pages as u64;
        let total_bits = final_count as usize;
        let mut bits = vec![0u8; total_bits.div_ceil(8)];
        for page in 0..total_bits {
            bits[page / 8] |= 1 << (page % 8);
        }
        let mut page_buf = vec![0u8; self.page_size];
        for (i, chunk) in bits.chunks(self.cap()).enumerate() {
            encode_page(&mut page_buf, PageType::AllocMap, 0, chunk);
            self.write_page_raw(alloc_first + i as u64, &page_buf)?;
        }
        self.page_count.store(final_count, Ordering::Release);
        // Data and map durable before the publish write: the elected
        // superblock must never describe pages that did not persist.
        self.file.sync_all()?;
        let generation = self.generation.load(Ordering::Relaxed) + 1;
        let catalog_first = self.catalog_first.load(Ordering::Relaxed);
        let sb = Superblock {
            page_size: self.page_size as u32,
            page_count: final_count,
            catalog_first: (catalog_first != NO_PAGE).then_some(catalog_first),
            total_bytes: self.total_bytes.load(Ordering::Relaxed),
            object_count: self.object_count.load(Ordering::Relaxed),
            alloc_first: Some(alloc_first),
            alloc_pages: map_pages as u32,
            generation,
            retired_pages: self.retired_pages.load(Ordering::Relaxed),
        };
        let mut slot_page = vec![0u8; self.page_size];
        sb.encode(&mut slot_page);
        // Generation g lives in slot g % 2; the live slot stays intact.
        self.write_page_raw(generation % 2, &slot_page)?;
        self.file.sync_all()?;
        self.generation.store(generation, Ordering::Relaxed);
        self.committed_pages.store(final_count, Ordering::Relaxed);
        self.dirty.store(false, Ordering::Relaxed);
        Ok(())
    }

    fn read_only(&self) -> bool {
        self.read_only
    }

    fn put_catalog(&self, _disk: &DiskSim, data: Vec<u8>) -> Result<PageId, StorageError> {
        if self.read_only {
            return Err(StorageError::ReadOnly);
        }
        let _w = self.writer.lock().unwrap();
        // Like `put`, but the catalog is file metadata: it is neither
        // charged as query I/O nor counted in the materialized totals.
        let first = self.page_count.load(Ordering::Relaxed);
        let pages = self.write_object_pages(first, &data)?;
        self.page_count.store(first + pages as u64, Ordering::Release);
        // Release: a reader that observes this pointer (Acquire in
        // `catalog`) must also observe the page_count covering it.
        self.catalog_first.store(first, Ordering::Release);
        self.dirty.store(true, Ordering::Relaxed);
        self.learn_size(first, data.len() as u32);
        let frame: Arc<[u8]> = data.into();
        self.pool.insert(PageId(first), frame, pages);
        Ok(PageId(first))
    }

    fn catalog(&self) -> Option<PageId> {
        match self.catalog_first.load(Ordering::Acquire) {
            NO_PAGE => None,
            v => Some(PageId(v)),
        }
    }

    fn set_catalog(&self, first: PageId) -> Result<(), StorageError> {
        if self.read_only {
            return Err(StorageError::ReadOnly);
        }
        self.catalog_first.store(first.0, Ordering::Release);
        self.dirty.store(true, Ordering::Relaxed);
        Ok(())
    }

    fn pool_stats(&self) -> Option<PoolStats> {
        Some(self.pool.stats())
    }

    fn attach_metrics(&self, metrics: &rcube_obs::Metrics, prefix: &str) {
        self.pool.attach_metrics(metrics, prefix);
    }

    fn generation(&self) -> Option<u64> {
        Some(self.generation.load(Ordering::Relaxed))
    }

    fn retire(&self, first: PageId) -> Result<(), StorageError> {
        // The bytes stay on disk (readers pinned on older generations
        // still stream them); we only account the pages as reclaimable
        // so a vacuum pass knows what a compacting rewrite would save.
        let len = match self.size_of(first) {
            Some(l) => l,
            None => self.read_object(first.0)?.0.len(),
        };
        self.retired_pages.fetch_add(self.pages_for_object(len) as u64, Ordering::Relaxed);
        // The tally is persisted in the next commit's superblock so the
        // vacuum watermark survives reopen.
        self.dirty.store(true, Ordering::Relaxed);
        Ok(())
    }

    fn reclaimable_pages(&self) -> u64 {
        self.retired_pages.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::CrashMode;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rcube_filebackend_{tag}_{}", std::process::id()));
        p
    }

    #[test]
    fn create_write_reopen_read() {
        let path = temp_path("roundtrip");
        let disk = DiskSim::with_defaults();
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let small = vec![7u8; 20];
        let (id_big, id_small) = {
            let be = FileBackend::create(&path, 4096, 16).unwrap();
            let a = be.put(&disk, data.clone()).unwrap();
            let b = be.put(&disk, small.clone()).unwrap();
            be.set_catalog(b).unwrap();
            be.flush().unwrap();
            (a, b)
        };
        let be = FileBackend::open(&path, 16).unwrap();
        assert!(be.read_only());
        assert_eq!(be.generation(), Some(1));
        assert_eq!(be.catalog(), Some(id_small));
        assert_eq!(be.object_count(), 2);
        assert_eq!(be.total_bytes(), data.len() + small.len());
        let disk2 = DiskSim::with_defaults();
        assert_eq!(&be.get(&disk2, id_big).unwrap()[..], &data[..]);
        assert_eq!(&be.get(&disk2, id_small).unwrap()[..], &small[..]);
        // Multi-page object: 40 004 bytes over (4096−8)-byte payloads = 10
        // physical reads, then a pool hit charges logical reads only.
        let before = disk2.stats().snapshot();
        be.get(&disk2, id_big).unwrap();
        let d = before.delta(&disk2.stats().snapshot());
        assert_eq!(d.disk_reads, 0);
        assert_eq!(d.logical_reads, 10);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cold_reads_charge_physical_io() {
        let path = temp_path("cold");
        let disk = DiskSim::with_defaults();
        let be = FileBackend::create(&path, 256, 64).unwrap();
        let id = be.put(&disk, vec![1u8; 600]).unwrap(); // 3 pages at 248-byte cap
        be.flush().unwrap();
        be.clear_cache();
        let before = disk.stats().snapshot();
        be.get(&disk, id).unwrap();
        let d = before.delta(&disk.stats().snapshot());
        assert_eq!(d.disk_reads, 3);
        be.get(&disk, id).unwrap();
        let d = before.delta(&disk.stats().snapshot());
        assert_eq!(d.disk_reads, 3, "second read served by the pool");
        assert_eq!(d.logical_reads, 6);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_byte_yields_checksum_error() {
        let path = temp_path("corrupt");
        let disk = DiskSim::with_defaults();
        let id = {
            let be = FileBackend::create(&path, 256, 0).unwrap();
            let id = be.put(&disk, vec![5u8; 100]).unwrap();
            be.flush().unwrap();
            id
        };
        // Flip one payload byte inside the object's page.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[256 * id.0 as usize + 40] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let be = FileBackend::open(&path, 0).unwrap();
        match be.get(&disk, id) {
            Err(StorageError::ChecksumMismatch { page }) => assert_eq!(page, id.0),
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected_on_open() {
        let path = temp_path("truncated");
        {
            let disk = DiskSim::with_defaults();
            let be = FileBackend::create(&path, 256, 0).unwrap();
            be.put(&disk, vec![1u8; 2000]).unwrap();
            be.flush().unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 300]).unwrap();
        assert!(matches!(FileBackend::open(&path, 0), Err(StorageError::TruncatedObject { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn superblock_padding_corruption_detected() {
        let path = temp_path("sb_padding");
        {
            let disk = DiskSim::with_defaults();
            let be = FileBackend::create(&path, 256, 0).unwrap();
            be.put(&disk, vec![3u8; 50]).unwrap();
            be.flush().unwrap();
        }
        // Flip a byte *past* the 80 serialized superblock bytes in both
        // slot pages: whichever slot wins the election, its zero-padding
        // check must reject the flip like any checksum failure.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[100] ^= 0x04;
        bytes[256 + 100] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            FileBackend::open(&path, 0),
            Err(StorageError::ChecksumMismatch { page: 0 | 1 })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn not_a_cube_file_rejected() {
        let path = temp_path("badmagic");
        std::fs::write(&path, vec![0x42u8; 4096]).unwrap();
        assert!(matches!(FileBackend::open(&path, 0), Err(StorageError::BadMagic)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn superblock_and_out_of_bounds_reads_rejected() {
        let path = temp_path("oob");
        let disk = DiskSim::with_defaults();
        let be = FileBackend::create(&path, 256, 0).unwrap();
        be.put(&disk, vec![1u8; 10]).unwrap();
        assert!(matches!(be.get(&disk, PageId(0)), Err(StorageError::OutOfBounds { .. })));
        assert!(matches!(be.get(&disk, PageId(1)), Err(StorageError::OutOfBounds { .. })));
        assert!(matches!(be.get(&disk, PageId(99)), Err(StorageError::OutOfBounds { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopened_file_rejects_writes() {
        let path = temp_path("readonly");
        let disk = DiskSim::with_defaults();
        {
            let be = FileBackend::create(&path, 256, 0).unwrap();
            be.put(&disk, vec![1u8; 10]).unwrap();
            be.flush().unwrap();
        }
        let be = FileBackend::open(&path, 0).unwrap();
        assert!(matches!(be.put(&disk, vec![2u8; 5]), Err(StorageError::ReadOnly)));
        assert!(matches!(be.set_catalog(PageId(2)), Err(StorageError::ReadOnly)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn overwrite_within_span_round_trips() {
        let path = temp_path("overwrite");
        let disk = DiskSim::with_defaults();
        let be = FileBackend::create(&path, 256, 4).unwrap();
        let id = be.put(&disk, vec![1u8; 400]).unwrap();
        be.overwrite(&disk, id, vec![2u8; 300]).unwrap();
        assert_eq!(&be.get(&disk, id).unwrap()[..], &[2u8; 300][..]);
        // Growing past the allocated span is rejected.
        assert!(matches!(
            be.overwrite(&disk, id, vec![3u8; 4000]),
            Err(StorageError::BadLength { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn committed_pages_are_immutable() {
        let path = temp_path("immutable");
        let disk = DiskSim::with_defaults();
        let be = FileBackend::create(&path, 256, 4).unwrap();
        let id = be.put(&disk, vec![1u8; 100]).unwrap();
        be.flush().unwrap();
        // The object is committed now: in-place mutation must be refused.
        assert!(matches!(
            be.overwrite(&disk, id, vec![2u8; 100]),
            Err(StorageError::ImmutableGeneration { .. })
        ));
        // A fresh append is still mutable until the next commit.
        let id2 = be.put(&disk, vec![3u8; 100]).unwrap();
        be.overwrite(&disk, id2, vec![4u8; 100]).unwrap();
        be.flush().unwrap();
        assert!(matches!(
            be.overwrite(&disk, id2, vec![5u8; 100]),
            Err(StorageError::ImmutableGeneration { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn generations_commit_into_alternating_slots() {
        let path = temp_path("generations");
        let disk = DiskSim::with_defaults();
        let be = FileBackend::create(&path, 256, 4).unwrap();
        let a = be.put(&disk, vec![1u8; 50]).unwrap();
        be.set_catalog(a).unwrap();
        be.flush().unwrap();
        assert_eq!(be.generation(), Some(1));

        // A reader pinned on generation 1 while the writer commits 2.
        let reader = FileBackend::open(&path, 4).unwrap();
        assert_eq!(reader.generation(), Some(1));

        let b = be.put(&disk, vec![2u8; 50]).unwrap();
        be.set_catalog(b).unwrap();
        be.flush().unwrap();
        assert_eq!(be.generation(), Some(2));

        // The pinned reader still serves generation 1 byte-identically.
        assert_eq!(reader.catalog(), Some(a));
        assert_eq!(&reader.get(&disk, a).unwrap()[..], &[1u8; 50][..]);
        // A fresh open elects generation 2 and sees both objects.
        let fresh = FileBackend::open(&path, 4).unwrap();
        assert_eq!(fresh.generation(), Some(2));
        assert_eq!(fresh.catalog(), Some(b));
        assert_eq!(&fresh.get(&disk, a).unwrap()[..], &[1u8; 50][..]);
        assert_eq!(&fresh.get(&disk, b).unwrap()[..], &[2u8; 50][..]);
        // And the previous generation stays openable for scrubbing.
        let prev = FileBackend::open_previous(&path, 4).unwrap();
        assert_eq!(prev.generation(), Some(1));
        assert_eq!(prev.catalog(), Some(a));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_writable_appends_next_generation() {
        let path = temp_path("reopen_write");
        let disk = DiskSim::with_defaults();
        let a = {
            let be = FileBackend::create(&path, 256, 4).unwrap();
            let a = be.put(&disk, vec![1u8; 50]).unwrap();
            be.set_catalog(a).unwrap();
            be.flush().unwrap();
            a
        };
        let be = FileBackend::open_writable(&path, 4).unwrap();
        assert!(!be.read_only());
        assert_eq!(be.generation(), Some(1));
        let b = be.put(&disk, vec![2u8; 50]).unwrap();
        be.set_catalog(b).unwrap();
        be.flush().unwrap();
        assert_eq!(be.generation(), Some(2));
        drop(be);
        let fresh = FileBackend::open(&path, 4).unwrap();
        assert_eq!(fresh.generation(), Some(2));
        assert_eq!(fresh.catalog(), Some(b));
        assert_eq!(&fresh.get(&disk, a).unwrap()[..], &[1u8; 50][..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rollback_revives_previous_generation() {
        let path = temp_path("rollback");
        let disk = DiskSim::with_defaults();
        let (a, b) = {
            let be = FileBackend::create(&path, 256, 4).unwrap();
            let a = be.put(&disk, vec![1u8; 50]).unwrap();
            be.set_catalog(a).unwrap();
            be.flush().unwrap();
            let b = be.put(&disk, vec![2u8; 50]).unwrap();
            be.set_catalog(b).unwrap();
            be.flush().unwrap();
            (a, b)
        };
        assert_eq!(FileBackend::open(&path, 0).unwrap().catalog(), Some(b));
        let live = FileBackend::rollback_latest(&path).unwrap();
        assert_eq!(live, 1);
        let be = FileBackend::open(&path, 0).unwrap();
        assert_eq!(be.generation(), Some(1));
        assert_eq!(be.catalog(), Some(a));
        // One generation of history: a second rollback has nowhere to go.
        assert!(matches!(FileBackend::rollback_latest(&path), Err(StorageError::Malformed(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crashed_commit_elects_previous_generation() {
        let path = temp_path("crashcommit");
        let disk = DiskSim::with_defaults();
        let a = {
            let be = FileBackend::create(&path, 256, 4).unwrap();
            let a = be.put(&disk, vec![1u8; 50]).unwrap();
            be.set_catalog(a).unwrap();
            be.flush().unwrap();
            a
        };
        // Crash on the very first page write of the next generation:
        // nothing of generation 2 persists.
        let plan = FaultPlan::new();
        plan.crash_after_page_writes(0, CrashMode::Dropped);
        {
            let be = FileBackend::open_writable_faulted(&path, 4, Arc::clone(&plan)).unwrap();
            let b = be.put(&disk, vec![2u8; 50]).unwrap();
            be.set_catalog(b).unwrap();
            be.flush().unwrap(); // "succeeds" — but nothing persisted
            assert!(plan.crashed());
        }
        let be = FileBackend::open(&path, 4).unwrap();
        assert_eq!(be.generation(), Some(1));
        assert_eq!(be.catalog(), Some(a));
        assert_eq!(&be.get(&disk, a).unwrap()[..], &[1u8; 50][..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_lock_excludes_second_writable_handle() {
        let path = temp_path("writerlock");
        let disk = DiskSim::with_defaults();
        let be = FileBackend::create(&path, 256, 0).unwrap();
        be.put(&disk, vec![1u8; 20]).unwrap();
        be.flush().unwrap();
        // Held by the live create handle: writable opens and recreates
        // fail typed; read-only opens are never excluded.
        for attempt in [FileBackend::open_writable(&path, 0), FileBackend::create(&path, 256, 0)] {
            match attempt {
                Err(StorageError::WriterLocked { owner_pid }) => {
                    assert_eq!(owner_pid, std::process::id());
                }
                other => panic!("expected WriterLocked, got {:?}", other.map(|_| ())),
            }
        }
        let reader = FileBackend::open(&path, 0).unwrap();
        assert_eq!(reader.generation(), Some(1));
        drop(be);
        // Dropping the writer releases the lock for the next one.
        let be = FileBackend::open_writable(&path, 0).unwrap();
        drop(be);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn retired_pages_survive_reopen_and_peek() {
        let path = temp_path("retired_persist");
        let disk = DiskSim::with_defaults();
        let retired = {
            let be = FileBackend::create(&path, 256, 4).unwrap();
            let a = be.put(&disk, vec![1u8; 600]).unwrap();
            let b = be.put(&disk, vec![2u8; 600]).unwrap();
            be.set_catalog(b).unwrap();
            be.flush().unwrap();
            be.retire(a).unwrap();
            be.flush().unwrap();
            let r = be.reclaimable_pages();
            assert!(r > 0);
            r
        };
        // The watermark signal survives both read-only and writable
        // reopens, and the lock-free superblock peek agrees.
        assert_eq!(FileBackend::open(&path, 0).unwrap().reclaimable_pages(), retired);
        assert_eq!(FileBackend::open_writable(&path, 0).unwrap().reclaimable_pages(), retired);
        assert_eq!(FileBackend::peek_superblock(&path).unwrap().retired_pages, retired);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn publish_swap_replaces_target_under_pinned_reader() {
        let temp = temp_path("swap_temp");
        let target = temp_path("swap_target");
        let disk = DiskSim::with_defaults();
        let old_id = {
            let be = FileBackend::create(&target, 256, 4).unwrap();
            let id = be.put(&disk, vec![1u8; 50]).unwrap();
            be.set_catalog(id).unwrap();
            be.flush().unwrap();
            id
        };
        let new_id = {
            let be = FileBackend::create(&temp, 256, 4).unwrap();
            let id = be.put(&disk, vec![2u8; 70]).unwrap();
            be.set_catalog(id).unwrap();
            be.flush().unwrap();
            id
        };
        // A reader pinned on the old file before the swap…
        let pinned = FileBackend::open(&target, 0).unwrap();
        FileBackend::publish_swap(&temp, &target, None).unwrap();
        // …keeps serving the retired inode byte-identically, while a
        // fresh open elects the swapped-in file.
        assert_eq!(&pinned.get(&disk, old_id).unwrap()[..], &[1u8; 50][..]);
        let fresh = FileBackend::open(&target, 0).unwrap();
        assert_eq!(&fresh.get(&disk, new_id).unwrap()[..], &[2u8; 70][..]);
        assert!(!temp.exists());
        std::fs::remove_file(&target).ok();
    }

    #[test]
    fn seek_locked_mode_matches_positional_io() {
        // The non-unix fallback path (mutex around seek+access), forced
        // at runtime so unix CI actually exercises it: byte-identical
        // round trips under the same concurrent hammering.
        let path = temp_path("seeklocked");
        let disk = DiskSim::with_defaults();
        let objects: Vec<Vec<u8>> =
            (0..16u8).map(|i| vec![i; 64 + (i as usize * 53) % 500]).collect();
        let ids: Vec<PageId> = {
            let opts = FileOptions { pool_pages: 8, io_mode: IoMode::SeekLocked, faults: None };
            let be = FileBackend::create_with(&path, 256, opts).unwrap();
            assert_eq!(be.file.mode, IoMode::SeekLocked);
            let ids = objects.iter().map(|o| be.put(&disk, o.clone()).unwrap()).collect();
            be.flush().unwrap();
            ids
        };
        // Reopen in each mode; answers must be byte-identical.
        for mode in [IoMode::SeekLocked, IoMode::default()] {
            let opts = FileOptions { pool_pages: 0, io_mode: mode, faults: None };
            let be = FileBackend::open_with(&path, opts).unwrap();
            std::thread::scope(|s| {
                for t in 0..4usize {
                    let (be, ids, objects) = (&be, &ids, &objects);
                    s.spawn(move || {
                        let disk = DiskSim::with_defaults();
                        for round in 0..25 {
                            let i = (t * 5 + round * 3) % ids.len();
                            let bytes = be.get(&disk, ids[i]).unwrap();
                            assert_eq!(&bytes[..], &objects[i][..], "object {i} in {mode:?}");
                        }
                    });
                }
            });
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_readers_share_one_backend() {
        // 8 threads × many objects against one read-only backend: every
        // read validates and returns the exact stored bytes with no file
        // lock on the path (positional reads + sharded pool).
        let path = temp_path("concurrent");
        let disk = DiskSim::with_defaults();
        let objects: Vec<Vec<u8>> =
            (0..24u8).map(|i| vec![i; 64 + (i as usize * 37) % 700]).collect();
        let ids: Vec<PageId> = {
            let be = FileBackend::create(&path, 256, 64).unwrap();
            let ids = objects.iter().map(|o| be.put(&disk, o.clone()).unwrap()).collect();
            be.flush().unwrap();
            ids
        };
        let be = FileBackend::open(&path, 32).unwrap();
        std::thread::scope(|s| {
            for t in 0..8usize {
                let (be, ids, objects) = (&be, &ids, &objects);
                s.spawn(move || {
                    let disk = DiskSim::with_defaults();
                    for round in 0..50 {
                        let i = (t * 7 + round * 11) % ids.len();
                        let bytes = be.get(&disk, ids[i]).unwrap();
                        assert_eq!(&bytes[..], &objects[i][..], "object {i}");
                    }
                });
            }
        });
        let stats = be.pool_stats();
        assert_eq!(stats.hits() + stats.misses(), 8 * 50);
        assert!(stats.hits() > 0, "warm pool must absorb repeat reads");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pool_stats_expose_shard_counters() {
        let path = temp_path("poolstats");
        let disk = DiskSim::with_defaults();
        let be = FileBackend::create(&path, 256, 16).unwrap();
        let ids: Vec<PageId> = (0..6).map(|i| be.put(&disk, vec![i as u8; 100]).unwrap()).collect();
        be.clear_cache();
        for &id in &ids {
            be.get(&disk, id).unwrap(); // miss
            be.get(&disk, id).unwrap(); // hit
        }
        let stats = be.pool_stats();
        assert_eq!(stats.hits(), 6);
        assert_eq!(stats.misses(), 6);
        assert_eq!(stats.frames(), 6);
        assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
        assert!(!stats.shards.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
