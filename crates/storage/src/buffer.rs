//! A small O(1) LRU buffer pool over page identifiers.
//!
//! The simulated device does not move bytes on hit/miss; the buffer only
//! decides whether a logical read is charged as a physical one. Capacity is
//! expressed in pages, mirroring the fixed-size buffer pool of the database
//! server used in the thesis experiments.

use std::collections::HashMap;

use crate::disk::PageId;

/// Intrusive doubly-linked LRU list backed by a slab of nodes.
#[derive(Debug)]
pub struct LruBuffer {
    capacity: usize,
    map: HashMap<PageId, usize>,
    nodes: Vec<Node>,
    head: usize, // most-recently used
    tail: usize, // least-recently used
    free: Vec<usize>,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    page: PageId,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl LruBuffer {
    /// Creates a buffer holding at most `capacity` pages. A capacity of zero
    /// disables caching entirely (every read is a physical read).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    /// Number of pages currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Touches `page`; returns `true` on a hit. On a miss the page is
    /// admitted, evicting the least-recently-used page if at capacity.
    pub fn touch(&mut self, page: PageId) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(&idx) = self.map.get(&page) {
            self.unlink(idx);
            self.push_front(idx);
            return true;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            let victim_page = self.nodes[victim].page;
            self.unlink(victim);
            self.map.remove(&victim_page);
            self.free.push(victim);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node { page, prev: NIL, next: NIL };
                i
            }
            None => {
                self.nodes.push(Node { page, prev: NIL, next: NIL });
                self.nodes.len() - 1
            }
        };
        self.map.insert(page, idx);
        self.push_front(idx);
        false
    }

    /// True when `page` is cached (without promoting it).
    pub fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    /// Drops `page` from the buffer (e.g. after a structural delete).
    pub fn invalidate(&mut self, page: PageId) {
        if let Some(idx) = self.map.remove(&page) {
            self.unlink(idx);
            self.free.push(idx);
        }
    }

    /// Empties the buffer (used between metered query runs for cold-cache
    /// measurements).
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, idx: usize) {
        let Node { prev, next, .. } = self.nodes[idx];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u64) -> PageId {
        PageId(n)
    }

    #[test]
    fn miss_then_hit() {
        let mut lru = LruBuffer::new(2);
        assert!(!lru.touch(p(1)));
        assert!(lru.touch(p(1)));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = LruBuffer::new(2);
        lru.touch(p(1));
        lru.touch(p(2));
        lru.touch(p(1)); // 2 is now LRU
        lru.touch(p(3)); // evicts 2
        assert!(lru.contains(p(1)));
        assert!(!lru.contains(p(2)));
        assert!(lru.contains(p(3)));
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut lru = LruBuffer::new(0);
        assert!(!lru.touch(p(7)));
        assert!(!lru.touch(p(7)));
        assert!(lru.is_empty());
    }

    #[test]
    fn invalidate_frees_slot() {
        let mut lru = LruBuffer::new(1);
        lru.touch(p(1));
        lru.invalidate(p(1));
        assert!(lru.is_empty());
        assert!(!lru.touch(p(2)));
        assert!(lru.contains(p(2)));
    }

    #[test]
    fn heavy_churn_preserves_capacity_invariant() {
        let mut lru = LruBuffer::new(8);
        for i in 0..1000u64 {
            lru.touch(p(i % 13));
            assert!(lru.len() <= 8);
        }
        assert_eq!(lru.len(), 8);
    }

    #[test]
    fn clear_resets() {
        let mut lru = LruBuffer::new(4);
        for i in 0..4 {
            lru.touch(p(i));
        }
        lru.clear();
        assert!(lru.is_empty());
        assert!(!lru.touch(p(0)));
    }
}
