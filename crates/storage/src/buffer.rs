//! LRU buffer pools: id-only accounting and real byte frames.
//!
//! Two pools live here, both built on O(1) intrusive-list LRUs with
//! capacity expressed in pages:
//!
//! * [`LruBuffer`] — page *identifiers* only. The simulated device
//!   ([`crate::DiskSim`]) does not move bytes on hit/miss; this buffer
//!   just decides whether a logical read is charged as a physical one.
//! * [`BufferPool`] — real frames, **sharded for concurrency**. The file
//!   backend caches each object's assembled payload as an `Arc<[u8]>`
//!   frame weighted by its covering page count; `get_bytes` handles are
//!   shared views into these frames, so a hit serves the zero-copy
//!   posting-list cursors without touching the file. The pool is split
//!   into N lock-striped LRU shards keyed by first page id, each with its
//!   own page-weighted budget and hit/miss/eviction counters — concurrent
//!   readers of distinct objects almost never contend on the same lock.
//!   [`BufferPool::stats`] snapshots every shard for observability
//!   ([`PoolStats`] / [`PoolShardStats`]).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rcube_obs::{Counter, Metrics};

use crate::disk::PageId;

/// Intrusive doubly-linked LRU list backed by a slab of nodes.
#[derive(Debug)]
pub struct LruBuffer {
    capacity: usize,
    map: HashMap<PageId, usize>,
    nodes: Vec<Node>,
    head: usize, // most-recently used
    tail: usize, // least-recently used
    free: Vec<usize>,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    page: PageId,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl LruBuffer {
    /// Creates a buffer holding at most `capacity` pages. A capacity of zero
    /// disables caching entirely (every read is a physical read).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    /// Number of pages currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Touches `page`; returns `true` on a hit. On a miss the page is
    /// admitted, evicting the least-recently-used page if at capacity.
    pub fn touch(&mut self, page: PageId) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(&idx) = self.map.get(&page) {
            self.unlink(idx);
            self.push_front(idx);
            return true;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            let victim_page = self.nodes[victim].page;
            self.unlink(victim);
            self.map.remove(&victim_page);
            self.free.push(victim);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node { page, prev: NIL, next: NIL };
                i
            }
            None => {
                self.nodes.push(Node { page, prev: NIL, next: NIL });
                self.nodes.len() - 1
            }
        };
        self.map.insert(page, idx);
        self.push_front(idx);
        false
    }

    /// True when `page` is cached (without promoting it).
    pub fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    /// Drops `page` from the buffer (e.g. after a structural delete).
    pub fn invalidate(&mut self, page: PageId) {
        if let Some(idx) = self.map.remove(&page) {
            self.unlink(idx);
            self.free.push(idx);
        }
    }

    /// Empties the buffer (used between metered query runs for cold-cache
    /// measurements).
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, idx: usize) {
        let Node { prev, next, .. } = self.nodes[idx];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

/// Default shard count for [`BufferPool`]: enough stripes that concurrent
/// query threads rarely collide, few enough that per-shard budgets stay
/// meaningfully large at the default 256-page capacity.
pub const DEFAULT_POOL_SHARDS: usize = 8;

/// An id-level LRU buffer split into lock stripes — [`LruBuffer`] sharded
/// the same way [`BufferPool`] was in the concurrent-serving PR, so the
/// simulated device's hit/miss accounting stops serializing cursor-heavy
/// concurrent workloads on one mutex. Pages hash to stripes by id
/// (Fibonacci multiplicative hash, like the pool); each stripe runs its
/// own LRU over an even slice of the capacity. Per-stripe LRU is an
/// approximation of global LRU — hit rates differ slightly at tiny
/// capacities, deterministically for any fixed access sequence.
#[derive(Debug)]
pub struct StripedLruBuffer {
    shards: Vec<Mutex<LruBuffer>>,
}

impl StripedLruBuffer {
    /// Buffer holding at most `capacity` pages across
    /// [`DEFAULT_POOL_SHARDS`] stripes. Zero disables caching (every read
    /// is a physical read). The stripe count is clamped so no stripe
    /// starts with zero capacity unless the whole buffer is disabled.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, DEFAULT_POOL_SHARDS)
    }

    /// Buffer with an explicit stripe count (clamped to `capacity`).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let n = shards.max(1).min(capacity.max(1));
        let (per, extra) = (capacity / n, capacity % n);
        let shards =
            (0..n).map(|i| Mutex::new(LruBuffer::new(per + usize::from(i < extra)))).collect();
        Self { shards }
    }

    fn shard(&self, page: PageId) -> &Mutex<LruBuffer> {
        let h = page.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Number of lock stripes.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Touches `page` in its stripe; returns `true` on a hit.
    pub fn touch(&self, page: PageId) -> bool {
        self.shard(page).lock().unwrap().touch(page)
    }

    /// True when `page` is cached (without promoting it).
    pub fn contains(&self, page: PageId) -> bool {
        self.shard(page).lock().unwrap().contains(page)
    }

    /// Pages currently cached across stripes.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Configured capacity across stripes.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().capacity()).sum()
    }

    /// Empties every stripe (cold-cache measurement point).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap().clear();
        }
    }
}

/// Point-in-time counters of one buffer-pool shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolShardStats {
    /// Lookups served from this shard.
    pub hits: u64,
    /// Lookups that missed this shard.
    pub misses: u64,
    /// Frames evicted under budget pressure (replacements excluded).
    pub evictions: u64,
    /// Pages currently held by cached frames.
    pub used_pages: usize,
    /// This shard's slice of the pool budget, in pages.
    pub capacity_pages: usize,
    /// Number of cached frames.
    pub frames: usize,
}

/// Point-in-time snapshot of a whole [`BufferPool`]: one entry per shard
/// plus aggregate helpers — the observability surface benches print as
/// "cache effectiveness".
#[derive(Debug, Clone, Default)]
pub struct PoolStats {
    pub shards: Vec<PoolShardStats>,
}

impl PoolStats {
    /// Total hits across shards.
    pub fn hits(&self) -> u64 {
        self.shards.iter().map(|s| s.hits).sum()
    }

    /// Total misses across shards.
    pub fn misses(&self) -> u64 {
        self.shards.iter().map(|s| s.misses).sum()
    }

    /// Total evictions across shards.
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.evictions).sum()
    }

    /// Pages currently cached across shards.
    pub fn used_pages(&self) -> usize {
        self.shards.iter().map(|s| s.used_pages).sum()
    }

    /// Configured capacity across shards.
    pub fn capacity_pages(&self) -> usize {
        self.shards.iter().map(|s| s.capacity_pages).sum()
    }

    /// Cached frames across shards.
    pub fn frames(&self) -> usize {
        self.shards.iter().map(|s| s.frames).sum()
    }

    /// Hit fraction in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

/// A byte-caching buffer pool: object frames under page-weighted LRU,
/// sharded by first page id (see the module docs).
///
/// All methods take `&self`; synchronization is internal and per-shard, so
/// any number of reader threads can hit disjoint shards in parallel.
/// Frames are keyed by the object's first page id and weigh as many pages
/// as the object covers on disk. Inserting past a shard's budget evicts
/// that shard's least-recently-used frames until the new one fits; a
/// frame heavier than its whole shard's slice is admitted alone in that
/// shard (so huge objects still benefit from back-to-back reads) and the
/// pool then reclaims pages from the *other* shards until the global
/// budget holds again. The pool-wide invariant matches the pre-sharding
/// LRU: after any insert, `used_pages ≤ max(capacity_pages, weight of
/// the largest resident frame)`. Two over-slice frames hashing to the
/// same shard still evict each other (a frame never spans shards) — the
/// one sharding trade-off, visible in the eviction counters.
#[derive(Debug)]
pub struct BufferPool {
    shards: Vec<Mutex<PoolShard>>,
    /// Pool-wide budget (the sum of the shard slices), cached so the
    /// post-insert rebalance check doesn't re-lock every shard.
    capacity_pages: usize,
    /// Live hit/miss/eviction counters, resolved once by
    /// [`BufferPool::attach_metrics`]. Unattached pools pay one branch.
    metrics: OnceLock<PoolMetricSet>,
}

/// Pre-resolved counter handles for the pool hot paths (the per-shard
/// `u64` counters stay authoritative for [`PoolStats`]; these mirror them
/// into a live registry without locking a shard to observe).
#[derive(Debug)]
struct PoolMetricSet {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl BufferPool {
    /// Pool holding at most `capacity_pages` pages' worth of frames across
    /// [`DEFAULT_POOL_SHARDS`] lock-striped shards. Zero disables caching
    /// (every read is a physical read).
    pub fn new(capacity_pages: usize) -> Self {
        Self::with_shards(capacity_pages, DEFAULT_POOL_SHARDS)
    }

    /// Pool with an explicit shard count. The budget is split evenly
    /// (earlier shards absorb the remainder); the effective shard count is
    /// clamped so no shard starts with a zero budget unless the whole pool
    /// is disabled.
    pub fn with_shards(capacity_pages: usize, shards: usize) -> Self {
        let n = shards.max(1).min(capacity_pages.max(1));
        let (per, extra) = (capacity_pages / n, capacity_pages % n);
        let shards =
            (0..n).map(|i| Mutex::new(PoolShard::new(per + usize::from(i < extra)))).collect();
        Self { shards, capacity_pages, metrics: OnceLock::new() }
    }

    /// Mirrors hit/miss/eviction counts into `metrics` as live counters
    /// named `{prefix}.pool.hits` / `.misses` / `.evictions`. Resolves
    /// the handles once; a second attach is a no-op (handles are
    /// permanent for the pool's lifetime).
    pub fn attach_metrics(&self, metrics: &Metrics, prefix: &str) {
        let _ = self.metrics.set(PoolMetricSet {
            hits: metrics.counter(&format!("{prefix}.pool.hits")),
            misses: metrics.counter(&format!("{prefix}.pool.misses")),
            evictions: metrics.counter(&format!("{prefix}.pool.evictions")),
        });
    }

    /// Number of lock stripes.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_index(&self, key: PageId) -> usize {
        // Fibonacci multiplicative hash: consecutive first-page ids (the
        // append-only allocator's pattern) spread across stripes.
        let h = key.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (h as usize) % self.shards.len()
    }

    fn shard(&self, key: PageId) -> &Mutex<PoolShard> {
        &self.shards[self.shard_index(key)]
    }

    /// Configured capacity in pages (sum over shards).
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Pages currently held by cached frames.
    pub fn used_pages(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().used_pages).sum()
    }

    /// Number of cached frames.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().map.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate `(hits, misses)` since creation or the last
    /// [`BufferPool::clear`].
    pub fn hit_stats(&self) -> (u64, u64) {
        let s = self.stats();
        (s.hits(), s.misses())
    }

    /// Per-shard occupancy and hit/miss/eviction counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats { shards: self.shards.iter().map(|s| s.lock().unwrap().stats()).collect() }
    }

    /// Looks up (and promotes) the frame rooted at `key`.
    pub fn get(&self, key: PageId) -> Option<Arc<[u8]>> {
        let frame = self.shard(key).lock().unwrap().get(key);
        if let Some(ms) = self.metrics.get() {
            if frame.is_some() { &ms.hits } else { &ms.misses }.inc();
        }
        frame
    }

    /// Admits a frame weighing `weight_pages`, evicting LRU frames from
    /// its shard until it fits (a frame heavier than the whole shard is
    /// admitted alone). Replaces any existing frame under the same key.
    /// If the admission pushed the shard past its slice, pages are
    /// reclaimed from the other shards so the pool-wide budget holds (see
    /// the type docs for the exact invariant).
    pub fn insert(&self, key: PageId, frame: Arc<[u8]>, weight_pages: usize) {
        let idx = self.shard_index(key);
        let (over_slice, evicted) = {
            let mut shard = self.shards[idx].lock().unwrap();
            let before = shard.evictions;
            shard.insert(key, frame, weight_pages);
            (shard.used_pages > shard.capacity_pages, shard.evictions - before)
        };
        if evicted > 0 {
            if let Some(ms) = self.metrics.get() {
                ms.evictions.add(evicted);
            }
        }
        // Every shard within its slice ⇒ the global budget holds, so the
        // cross-shard reclaim only runs after an oversized-alone admission.
        if over_slice {
            self.rebalance(idx);
        }
    }

    /// Evicts LRU frames from shards other than `keep` until the pool is
    /// back within its global budget (or only `keep`'s frames remain —
    /// the single-oversized-frame case, where occupancy equals that
    /// frame's weight, exactly like the pre-sharding pool).
    fn rebalance(&self, keep: usize) {
        loop {
            if self.used_pages() <= self.capacity_pages {
                return;
            }
            let mut evicted = false;
            for (i, shard) in self.shards.iter().enumerate() {
                if i == keep {
                    continue;
                }
                if shard.lock().unwrap().evict_tail() {
                    if let Some(ms) = self.metrics.get() {
                        ms.evictions.inc();
                    }
                    evicted = true;
                    if self.used_pages() <= self.capacity_pages {
                        return;
                    }
                }
            }
            if !evicted {
                return;
            }
        }
    }

    /// Drops the frame rooted at `key`, if cached.
    pub fn invalidate(&self, key: PageId) {
        self.shard(key).lock().unwrap().invalidate(key);
    }

    /// Empties every shard (cold-cache measurement point) and resets the
    /// counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap().clear();
        }
    }
}

/// One lock stripe of the pool: an intrusive page-weighted LRU of frames.
#[derive(Debug)]
struct PoolShard {
    capacity_pages: usize,
    used_pages: usize,
    map: HashMap<PageId, usize>,
    nodes: Vec<FrameNode>,
    head: usize,
    tail: usize,
    free: Vec<usize>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug)]
struct FrameNode {
    key: PageId,
    weight: usize,
    frame: Arc<[u8]>,
    prev: usize,
    next: usize,
}

impl PoolShard {
    fn new(capacity_pages: usize) -> Self {
        Self {
            capacity_pages,
            used_pages: 0,
            map: HashMap::new(),
            nodes: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn stats(&self) -> PoolShardStats {
        PoolShardStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            used_pages: self.used_pages,
            capacity_pages: self.capacity_pages,
            frames: self.map.len(),
        }
    }

    fn get(&mut self, key: PageId) -> Option<Arc<[u8]>> {
        match self.map.get(&key).copied() {
            Some(idx) => {
                self.unlink(idx);
                self.push_front(idx);
                self.hits += 1;
                Some(Arc::clone(&self.nodes[idx].frame))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: PageId, frame: Arc<[u8]>, weight_pages: usize) {
        if self.capacity_pages == 0 {
            return;
        }
        self.invalidate(key);
        let weight = weight_pages.max(1);
        while self.used_pages + weight > self.capacity_pages && self.tail != NIL {
            let victim = self.tail;
            let victim_key = self.nodes[victim].key;
            self.invalidate(victim_key);
            self.evictions += 1;
        }
        if weight > self.capacity_pages && !self.map.is_empty() {
            // Defensive: eviction loop above already emptied the shard.
            return;
        }
        let node = FrameNode { key, weight, frame, prev: NIL, next: NIL };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.used_pages += weight;
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    fn invalidate(&mut self, key: PageId) {
        if let Some(idx) = self.map.remove(&key) {
            self.used_pages -= self.nodes[idx].weight;
            self.unlink(idx);
            self.nodes[idx].frame = Arc::from(&[][..]);
            self.free.push(idx);
        }
    }

    /// Evicts this shard's least-recently-used frame; false when empty.
    fn evict_tail(&mut self) -> bool {
        if self.tail == NIL {
            return false;
        }
        let victim = self.nodes[self.tail].key;
        self.invalidate(victim);
        self.evictions += 1;
        true
    }

    fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.used_pages = 0;
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u64) -> PageId {
        PageId(n)
    }

    #[test]
    fn miss_then_hit() {
        let mut lru = LruBuffer::new(2);
        assert!(!lru.touch(p(1)));
        assert!(lru.touch(p(1)));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = LruBuffer::new(2);
        lru.touch(p(1));
        lru.touch(p(2));
        lru.touch(p(1)); // 2 is now LRU
        lru.touch(p(3)); // evicts 2
        assert!(lru.contains(p(1)));
        assert!(!lru.contains(p(2)));
        assert!(lru.contains(p(3)));
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut lru = LruBuffer::new(0);
        assert!(!lru.touch(p(7)));
        assert!(!lru.touch(p(7)));
        assert!(lru.is_empty());
    }

    #[test]
    fn invalidate_frees_slot() {
        let mut lru = LruBuffer::new(1);
        lru.touch(p(1));
        lru.invalidate(p(1));
        assert!(lru.is_empty());
        assert!(!lru.touch(p(2)));
        assert!(lru.contains(p(2)));
    }

    #[test]
    fn heavy_churn_preserves_capacity_invariant() {
        let mut lru = LruBuffer::new(8);
        for i in 0..1000u64 {
            lru.touch(p(i % 13));
            assert!(lru.len() <= 8);
        }
        assert_eq!(lru.len(), 8);
    }

    #[test]
    fn clear_resets() {
        let mut lru = LruBuffer::new(4);
        for i in 0..4 {
            lru.touch(p(i));
        }
        lru.clear();
        assert!(lru.is_empty());
        assert!(!lru.touch(p(0)));
    }

    #[test]
    fn striped_miss_then_hit_and_clear() {
        let buf = StripedLruBuffer::new(16);
        assert!(!buf.touch(p(3)));
        assert!(buf.touch(p(3)));
        assert!(buf.contains(p(3)));
        assert_eq!(buf.len(), 1);
        buf.clear();
        assert!(buf.is_empty());
        assert!(!buf.touch(p(3)));
    }

    #[test]
    fn striped_capacity_splits_and_clamps() {
        let buf = StripedLruBuffer::new(256);
        assert_eq!(buf.num_shards(), DEFAULT_POOL_SHARDS);
        assert_eq!(buf.capacity(), 256);
        // Fewer pages than stripes: clamp so no stripe starts at zero.
        let tiny = StripedLruBuffer::new(3);
        assert_eq!(tiny.num_shards(), 3);
        assert_eq!(tiny.capacity(), 3);
        // Zero capacity disables caching entirely.
        let off = StripedLruBuffer::new(0);
        assert_eq!(off.num_shards(), 1);
        assert!(!off.touch(p(1)));
        assert!(!off.touch(p(1)));
    }

    #[test]
    fn striped_churn_respects_total_capacity() {
        let buf = StripedLruBuffer::with_shards(8, 4);
        for i in 0..1000u64 {
            buf.touch(p(i % 23));
            assert!(buf.len() <= 8);
        }
        assert!(buf.len() >= 4, "stripes should hold pages after churn");
    }

    #[test]
    fn striped_concurrent_touches_are_safe() {
        let buf = std::sync::Arc::new(StripedLruBuffer::new(64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let buf = std::sync::Arc::clone(&buf);
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        buf.touch(p((i * 7 + t) % 100));
                    }
                });
            }
        });
        assert!(buf.len() <= 64);
    }

    fn frame(n: usize) -> Arc<[u8]> {
        vec![0xABu8; n].into()
    }

    #[test]
    fn pool_hits_after_insert() {
        let pool = BufferPool::new(4);
        assert!(pool.get(p(1)).is_none());
        pool.insert(p(1), frame(10), 1);
        let f = pool.get(p(1)).expect("cached");
        assert_eq!(f.len(), 10);
        assert_eq!(pool.hit_stats(), (1, 1));
    }

    #[test]
    fn pool_evicts_by_weight_single_shard() {
        let pool = BufferPool::with_shards(4, 1);
        pool.insert(p(1), frame(1), 2);
        pool.insert(p(2), frame(1), 2);
        assert_eq!(pool.used_pages(), 4);
        // A 3-page frame forces both residents out (LRU order).
        pool.insert(p(3), frame(1), 3);
        assert!(pool.get(p(1)).is_none());
        assert!(pool.get(p(2)).is_none());
        assert!(pool.get(p(3)).is_some());
        assert_eq!(pool.used_pages(), 3);
        assert_eq!(pool.stats().evictions(), 2);
    }

    #[test]
    fn pool_promotes_on_get() {
        let pool = BufferPool::with_shards(2, 1);
        pool.insert(p(1), frame(1), 1);
        pool.insert(p(2), frame(1), 1);
        pool.get(p(1)); // 2 becomes LRU
        pool.insert(p(3), frame(1), 1);
        assert!(pool.get(p(1)).is_some());
        assert!(pool.get(p(2)).is_none());
    }

    #[test]
    fn oversized_frame_still_admitted_alone() {
        let pool = BufferPool::with_shards(2, 1);
        pool.insert(p(1), frame(1), 1);
        pool.insert(p(9), frame(100), 10);
        assert!(pool.get(p(9)).is_some(), "oversized frame admitted after clearing shard");
        assert!(pool.get(p(1)).is_none());
    }

    #[test]
    fn zero_capacity_pool_caches_nothing() {
        let pool = BufferPool::new(0);
        pool.insert(p(1), frame(4), 1);
        assert!(pool.get(p(1)).is_none());
        assert!(pool.is_empty());
    }

    #[test]
    fn pool_invalidate_and_clear() {
        let pool = BufferPool::new(8);
        pool.insert(p(1), frame(4), 2);
        pool.invalidate(p(1));
        assert_eq!(pool.used_pages(), 0);
        pool.insert(p(2), frame(4), 2);
        pool.clear();
        assert!(pool.is_empty());
        assert_eq!(pool.hit_stats(), (0, 0));
    }

    #[test]
    fn pool_churn_respects_shard_budgets() {
        // Weights never exceed a shard budget, so the global capacity
        // invariant holds exactly (oversized-alone admission never fires).
        let pool = BufferPool::with_shards(8, 2);
        for i in 0..500u64 {
            pool.insert(p(i % 13), frame(8), (i % 3) as usize + 1);
            assert!(pool.used_pages() <= 8);
        }
    }

    #[test]
    fn over_slice_frame_reclaims_from_other_shards() {
        // 8 pages over 2 shards (4 + 4). Fill the pool with weight-1
        // frames, then admit a frame heavier than any single shard's
        // slice: it must be resident and the pool must reclaim from the
        // other shards back under the *global* budget — the pre-sharding
        // invariant `used ≤ max(capacity, heaviest frame)`.
        let pool = BufferPool::with_shards(8, 2);
        for i in 0..16u64 {
            pool.insert(p(i), frame(1), 1);
        }
        assert!(pool.used_pages() <= 8, "weight-1 churn stays within budget");
        assert!(pool.used_pages() >= 6, "both shards are populated");
        pool.insert(p(100), frame(1), 6);
        assert!(pool.get(p(100)).is_some(), "over-slice frame admitted");
        assert!(pool.used_pages() <= 8, "global budget restored, got {}", pool.used_pages());
        // Heavier than the whole pool: admitted alone, occupancy equals
        // its weight (exactly like the old single-LRU pool).
        pool.insert(p(200), frame(1), 11);
        assert!(pool.get(p(200)).is_some());
        assert!(pool.used_pages() <= 11);
        // The next within-budget churn drains back under capacity.
        for i in 0..8u64 {
            pool.insert(p(i), frame(1), 1);
        }
        assert!(pool.used_pages() <= 8);
    }

    #[test]
    fn shards_split_budget_and_count_clamps() {
        let pool = BufferPool::with_shards(10, 4);
        assert_eq!(pool.num_shards(), 4);
        assert_eq!(pool.capacity_pages(), 10);
        // More shards than pages: clamp so no shard starts at zero budget.
        let tiny = BufferPool::with_shards(3, 8);
        assert_eq!(tiny.num_shards(), 3);
        assert_eq!(tiny.capacity_pages(), 3);
        // Disabled pool still has one (empty) stripe.
        let off = BufferPool::with_shards(0, 8);
        assert_eq!(off.num_shards(), 1);
        assert_eq!(off.capacity_pages(), 0);
    }

    #[test]
    fn stats_snapshot_aggregates_shards() {
        let pool = BufferPool::new(64);
        for i in 0..16u64 {
            pool.insert(p(i), frame(8), 1);
        }
        for i in 0..16u64 {
            assert!(pool.get(p(i)).is_some());
        }
        pool.get(p(999));
        let s = pool.stats();
        assert_eq!(s.shards.len(), pool.num_shards());
        assert_eq!(s.hits(), 16);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.frames(), 16);
        assert_eq!(s.used_pages(), 16);
        assert!((s.hit_rate() - 16.0 / 17.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_gets_and_inserts_are_safe() {
        let pool = std::sync::Arc::new(BufferPool::new(64));
        for i in 0..32u64 {
            pool.insert(p(i), frame(16), 1);
        }
        std::thread::scope(|s| {
            for t in 0..4 {
                let pool = std::sync::Arc::clone(&pool);
                s.spawn(move || {
                    for round in 0..200u64 {
                        let k = (round * 7 + t) % 40;
                        match pool.get(p(k)) {
                            Some(f) => assert_eq!(f.len(), 16),
                            None => pool.insert(p(k), frame(16), 1),
                        }
                    }
                });
            }
        });
        assert!(pool.used_pages() <= pool.capacity_pages());
    }
}
