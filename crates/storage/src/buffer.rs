//! LRU buffer pools: id-only accounting and real byte frames.
//!
//! Two pools live here, both O(1) intrusive-list LRUs with capacity
//! expressed in pages:
//!
//! * [`LruBuffer`] — page *identifiers* only. The simulated device
//!   ([`crate::DiskSim`]) does not move bytes on hit/miss; this buffer
//!   just decides whether a logical read is charged as a physical one.
//! * [`BufferPool`] — real frames. The file backend caches each object's
//!   assembled payload as an `Arc<[u8]>` frame weighted by its covering
//!   page count; `get_bytes` handles are shared views into these frames,
//!   so a hit serves the zero-copy posting-list cursors without touching
//!   the file.

use std::collections::HashMap;
use std::sync::Arc;

use crate::disk::PageId;

/// Intrusive doubly-linked LRU list backed by a slab of nodes.
#[derive(Debug)]
pub struct LruBuffer {
    capacity: usize,
    map: HashMap<PageId, usize>,
    nodes: Vec<Node>,
    head: usize, // most-recently used
    tail: usize, // least-recently used
    free: Vec<usize>,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    page: PageId,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl LruBuffer {
    /// Creates a buffer holding at most `capacity` pages. A capacity of zero
    /// disables caching entirely (every read is a physical read).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    /// Number of pages currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Touches `page`; returns `true` on a hit. On a miss the page is
    /// admitted, evicting the least-recently-used page if at capacity.
    pub fn touch(&mut self, page: PageId) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(&idx) = self.map.get(&page) {
            self.unlink(idx);
            self.push_front(idx);
            return true;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            let victim_page = self.nodes[victim].page;
            self.unlink(victim);
            self.map.remove(&victim_page);
            self.free.push(victim);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node { page, prev: NIL, next: NIL };
                i
            }
            None => {
                self.nodes.push(Node { page, prev: NIL, next: NIL });
                self.nodes.len() - 1
            }
        };
        self.map.insert(page, idx);
        self.push_front(idx);
        false
    }

    /// True when `page` is cached (without promoting it).
    pub fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    /// Drops `page` from the buffer (e.g. after a structural delete).
    pub fn invalidate(&mut self, page: PageId) {
        if let Some(idx) = self.map.remove(&page) {
            self.unlink(idx);
            self.free.push(idx);
        }
    }

    /// Empties the buffer (used between metered query runs for cold-cache
    /// measurements).
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, idx: usize) {
        let Node { prev, next, .. } = self.nodes[idx];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

/// A byte-caching buffer pool: object frames under a page-weighted LRU.
///
/// Frames are keyed by the object's first page id and weigh as many pages
/// as the object covers on disk. Inserting past capacity evicts
/// least-recently-used frames until the new one fits; an object larger
/// than the whole pool is admitted alone (the pool momentarily holds just
/// that frame) so huge objects still benefit from back-to-back reads.
#[derive(Debug)]
pub struct BufferPool {
    capacity_pages: usize,
    used_pages: usize,
    map: HashMap<PageId, usize>,
    nodes: Vec<FrameNode>,
    head: usize,
    tail: usize,
    free: Vec<usize>,
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
struct FrameNode {
    key: PageId,
    weight: usize,
    frame: Arc<[u8]>,
    prev: usize,
    next: usize,
}

impl BufferPool {
    /// Pool holding at most `capacity_pages` pages' worth of frames. Zero
    /// disables caching (every read is a physical read).
    pub fn new(capacity_pages: usize) -> Self {
        Self {
            capacity_pages,
            used_pages: 0,
            map: HashMap::new(),
            nodes: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Configured capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Pages currently held by cached frames.
    pub fn used_pages(&self) -> usize {
        self.used_pages
    }

    /// Number of cached frames.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses)` since creation or the last [`BufferPool::clear`].
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Looks up (and promotes) the frame rooted at `key`.
    pub fn get(&mut self, key: PageId) -> Option<Arc<[u8]>> {
        match self.map.get(&key).copied() {
            Some(idx) => {
                self.unlink(idx);
                self.push_front(idx);
                self.hits += 1;
                Some(Arc::clone(&self.nodes[idx].frame))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Admits a frame weighing `weight_pages`, evicting LRU frames until
    /// it fits. Replaces any existing frame under the same key.
    pub fn insert(&mut self, key: PageId, frame: Arc<[u8]>, weight_pages: usize) {
        if self.capacity_pages == 0 {
            return;
        }
        self.invalidate(key);
        let weight = weight_pages.max(1);
        while self.used_pages + weight > self.capacity_pages && self.tail != NIL {
            let victim = self.tail;
            let victim_key = self.nodes[victim].key;
            self.invalidate(victim_key);
        }
        if weight > self.capacity_pages && !self.map.is_empty() {
            // Defensive: eviction loop above already emptied the pool.
            return;
        }
        let node = FrameNode { key, weight, frame, prev: NIL, next: NIL };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.used_pages += weight;
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// Drops the frame rooted at `key`, if cached.
    pub fn invalidate(&mut self, key: PageId) {
        if let Some(idx) = self.map.remove(&key) {
            self.used_pages -= self.nodes[idx].weight;
            self.unlink(idx);
            self.nodes[idx].frame = Arc::from(&[][..]);
            self.free.push(idx);
        }
    }

    /// Empties the pool (cold-cache measurement point) and resets the
    /// hit/miss counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.used_pages = 0;
        self.hits = 0;
        self.misses = 0;
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u64) -> PageId {
        PageId(n)
    }

    #[test]
    fn miss_then_hit() {
        let mut lru = LruBuffer::new(2);
        assert!(!lru.touch(p(1)));
        assert!(lru.touch(p(1)));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = LruBuffer::new(2);
        lru.touch(p(1));
        lru.touch(p(2));
        lru.touch(p(1)); // 2 is now LRU
        lru.touch(p(3)); // evicts 2
        assert!(lru.contains(p(1)));
        assert!(!lru.contains(p(2)));
        assert!(lru.contains(p(3)));
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut lru = LruBuffer::new(0);
        assert!(!lru.touch(p(7)));
        assert!(!lru.touch(p(7)));
        assert!(lru.is_empty());
    }

    #[test]
    fn invalidate_frees_slot() {
        let mut lru = LruBuffer::new(1);
        lru.touch(p(1));
        lru.invalidate(p(1));
        assert!(lru.is_empty());
        assert!(!lru.touch(p(2)));
        assert!(lru.contains(p(2)));
    }

    #[test]
    fn heavy_churn_preserves_capacity_invariant() {
        let mut lru = LruBuffer::new(8);
        for i in 0..1000u64 {
            lru.touch(p(i % 13));
            assert!(lru.len() <= 8);
        }
        assert_eq!(lru.len(), 8);
    }

    #[test]
    fn clear_resets() {
        let mut lru = LruBuffer::new(4);
        for i in 0..4 {
            lru.touch(p(i));
        }
        lru.clear();
        assert!(lru.is_empty());
        assert!(!lru.touch(p(0)));
    }

    fn frame(n: usize) -> Arc<[u8]> {
        vec![0xABu8; n].into()
    }

    #[test]
    fn pool_hits_after_insert() {
        let mut pool = BufferPool::new(4);
        assert!(pool.get(p(1)).is_none());
        pool.insert(p(1), frame(10), 1);
        let f = pool.get(p(1)).expect("cached");
        assert_eq!(f.len(), 10);
        assert_eq!(pool.hit_stats(), (1, 1));
    }

    #[test]
    fn pool_evicts_by_weight() {
        let mut pool = BufferPool::new(4);
        pool.insert(p(1), frame(1), 2);
        pool.insert(p(2), frame(1), 2);
        assert_eq!(pool.used_pages(), 4);
        // A 3-page frame forces both residents out (LRU order).
        pool.insert(p(3), frame(1), 3);
        assert!(pool.get(p(1)).is_none());
        assert!(pool.get(p(2)).is_none());
        assert!(pool.get(p(3)).is_some());
        assert_eq!(pool.used_pages(), 3);
    }

    #[test]
    fn pool_promotes_on_get() {
        let mut pool = BufferPool::new(2);
        pool.insert(p(1), frame(1), 1);
        pool.insert(p(2), frame(1), 1);
        pool.get(p(1)); // 2 becomes LRU
        pool.insert(p(3), frame(1), 1);
        assert!(pool.get(p(1)).is_some());
        assert!(pool.get(p(2)).is_none());
    }

    #[test]
    fn oversized_frame_still_admitted_alone() {
        let mut pool = BufferPool::new(2);
        pool.insert(p(1), frame(1), 1);
        pool.insert(p(9), frame(100), 10);
        assert!(pool.get(p(9)).is_some(), "oversized frame admitted after clearing pool");
        assert!(pool.get(p(1)).is_none());
    }

    #[test]
    fn zero_capacity_pool_caches_nothing() {
        let mut pool = BufferPool::new(0);
        pool.insert(p(1), frame(4), 1);
        assert!(pool.get(p(1)).is_none());
        assert!(pool.is_empty());
    }

    #[test]
    fn pool_invalidate_and_clear() {
        let mut pool = BufferPool::new(8);
        pool.insert(p(1), frame(4), 2);
        pool.invalidate(p(1));
        assert_eq!(pool.used_pages(), 0);
        pool.insert(p(2), frame(4), 2);
        pool.clear();
        assert!(pool.is_empty());
        assert_eq!(pool.hit_stats(), (0, 0));
    }

    #[test]
    fn pool_churn_respects_capacity() {
        let mut pool = BufferPool::new(8);
        for i in 0..500u64 {
            pool.insert(p(i % 13), frame(8), (i % 3) as usize + 1);
            assert!(pool.used_pages() <= 8);
        }
    }
}
