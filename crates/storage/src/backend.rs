//! The pluggable page backend: one trait, two devices.
//!
//! Everything above this crate stores *objects* (serialized cells, base
//! blocks, partial signatures) through [`crate::PageStore`]; the store
//! delegates to a [`PageBackend`]:
//!
//! * [`MemBackend`] — the original in-memory simulator. Bytes live in a
//!   map, the [`crate::DiskSim`] passed to each call decides buffer
//!   hits/misses and charges the shared [`crate::IoStats`]. Deterministic
//!   and allocation-cheap: the default for unit tests and builds.
//! * [`crate::FileBackend`] — a real single-file store with checksummed
//!   pages and a byte-caching buffer pool ([`crate::BufferPool`]). Reads
//!   are charged against the same `IoStats` so metered experiments work
//!   identically over either device.
//!
//! Both backends hand out `Arc<[u8]>` object handles; the zero-copy
//! posting-list cursors of `rcube_core::idlist` parse borrowed views
//! straight off them, whether the bytes came from a map or a cold disk
//! page.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::buffer::PoolStats;
use crate::disk::{DiskSim, PageId};

/// Typed storage failure. The file backend validates magic, version,
/// page type, length and CRC *before* handing bytes out; each rejection
/// names the page so corruption is diagnosable instead of a panic.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not start with the cube-file magic.
    BadMagic,
    /// The file's format version is newer/older than this build supports.
    UnsupportedVersion(u16),
    /// A page's CRC-32 did not match its contents.
    ChecksumMismatch { page: u64 },
    /// A page header carried an unknown page-type byte.
    BadPageType { page: u64, found: u8 },
    /// A declared length exceeds what the page / buffer can hold.
    BadLength { page: u64, len: usize, max: usize },
    /// An object's continuation chain ran past the end of the file.
    TruncatedObject { page: u64 },
    /// A page id past the end of the file was requested.
    OutOfBounds { page: u64, page_count: u64 },
    /// No object is rooted at the requested page.
    MissingObject(PageId),
    /// Write attempted on a backend opened read-only.
    ReadOnly,
    /// In-place overwrite attempted on a page belonging to a committed
    /// generation (committed pages are immutable; patch by appending).
    ImmutableGeneration { page: u64 },
    /// A second writable handle was refused: the cube file's advisory
    /// lock file is held by a live writer (`owner_pid`). See
    /// `format` § *Locking & swap protocol* for the takeover rule.
    WriterLocked { owner_pid: u32 },
    /// A catalog or structural blob failed validation.
    Malformed(&'static str),
}

impl StorageError {
    /// True for faults worth retrying with backoff: transient I/O kinds
    /// (interrupted syscalls, timeouts) rather than structural damage.
    pub fn is_transient(&self) -> bool {
        match self {
            Self::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::TimedOut
            ),
            _ => false,
        }
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "storage I/O error: {e}"),
            Self::BadMagic => write!(f, "not a ranking-cube file (bad magic)"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported cube-file format version {v}"),
            Self::ChecksumMismatch { page } => write!(f, "checksum mismatch on page {page}"),
            Self::BadPageType { page, found } => {
                write!(f, "invalid page type {found} on page {page}")
            }
            Self::BadLength { page, len, max } => {
                write!(f, "invalid length {len} on page {page} (max {max})")
            }
            Self::TruncatedObject { page } => {
                write!(f, "object truncated: continuation past page {page}")
            }
            Self::OutOfBounds { page, page_count } => {
                write!(f, "page {page} out of bounds (file has {page_count} pages)")
            }
            Self::MissingObject(id) => write!(f, "no object rooted at {id:?}"),
            Self::ReadOnly => write!(f, "store is read-only"),
            Self::ImmutableGeneration { page } => {
                write!(f, "page {page} belongs to a committed generation (immutable)")
            }
            Self::WriterLocked { owner_pid } => {
                write!(f, "cube file writer lock held by live process {owner_pid}")
            }
            Self::Malformed(what) => write!(f, "malformed cube file: {what}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// A device that stores byte objects in fixed-size pages.
///
/// Object granularity: `put` lays an object over one or more consecutive
/// pages and returns the first page id; `get` reassembles it. The
/// [`DiskSim`] argument is the *meter* — backends charge logical/physical
/// reads and writes against its shared [`crate::IoStats`] so the paper's
/// disk-access counts stay comparable across devices. Hit/miss is decided
/// by the backend's own cache (the `DiskSim` buffer for [`MemBackend`],
/// the byte-level [`crate::BufferPool`] for the file store).
pub trait PageBackend: Send + Sync + std::fmt::Debug {
    /// Stores a new object, charging writes; returns its first page id.
    fn put(&self, disk: &DiskSim, data: Vec<u8>) -> Result<PageId, StorageError>;

    /// Replaces the object rooted at `first` (same id, new bytes).
    ///
    /// Legal only on objects the current, still-uncommitted generation
    /// owns: backends with generational commits reject an overwrite of a
    /// committed page with [`StorageError::ImmutableGeneration`] — a
    /// committed generation is an immutable value, patched by appending a
    /// new copy (COW) and publishing a new catalog, never in place.
    fn overwrite(&self, disk: &DiskSim, first: PageId, data: Vec<u8>) -> Result<(), StorageError>;

    /// Reads the object rooted at `first`, charging one read per covering
    /// page, and returns a shared handle to its bytes.
    fn get(&self, disk: &DiskSim, first: PageId) -> Result<Arc<[u8]>, StorageError>;

    /// Reads an object without charging I/O (save/open bookkeeping, not a
    /// metered query path).
    fn peek(&self, first: PageId) -> Result<Arc<[u8]>, StorageError>;

    /// Object payload size in bytes, if known without I/O.
    fn size_of(&self, first: PageId) -> Option<usize>;

    /// Total stored payload bytes (materialized-size metric).
    fn total_bytes(&self) -> usize;

    /// Number of stored objects.
    fn object_count(&self) -> usize;

    /// Drops cached bytes (cold-cache measurement point). No-op for the
    /// in-memory backend, whose "cache" is the `DiskSim` buffer.
    fn clear_cache(&self);

    /// Durably persists metadata (superblock, allocation map). No-op for
    /// the in-memory backend.
    fn flush(&self) -> Result<(), StorageError> {
        Ok(())
    }

    /// True when mutation is rejected (a reopened cube file).
    fn read_only(&self) -> bool {
        false
    }

    /// Root object recorded in the device's metadata, if any.
    fn catalog(&self) -> Option<PageId>;

    /// Records the root object (the cube catalog) in device metadata.
    fn set_catalog(&self, first: PageId) -> Result<(), StorageError>;

    /// Stores the catalog object and records it as the root. Backends
    /// with persistent metadata exclude it from `total_bytes` /
    /// `object_count`, keeping those the paper's *materialized cube size*
    /// (cells + base blocks), not file overhead.
    fn put_catalog(&self, disk: &DiskSim, data: Vec<u8>) -> Result<PageId, StorageError> {
        let id = self.put(disk, data)?;
        self.set_catalog(id)?;
        Ok(id)
    }

    /// Snapshot of the backend's byte-caching buffer pool, if it has one.
    /// `None` for the in-memory backend, whose "cache" is the id-level
    /// `DiskSim` buffer.
    fn pool_stats(&self) -> Option<PoolStats> {
        None
    }

    /// The committed generation this handle serves, for backends with
    /// generational commits (`None` for the in-memory simulator).
    fn generation(&self) -> Option<u64> {
        None
    }

    /// Marks the object rooted at `first` unreachable from the next
    /// generation (COW maintenance retired it). The in-memory backend
    /// frees it immediately; the file backend records it for vacuum —
    /// the bytes stay readable by handles pinned on older generations.
    fn retire(&self, first: PageId) -> Result<(), StorageError> {
        let _ = first;
        Ok(())
    }

    /// Pages retired by COW maintenance that a vacuum (compacting
    /// rewrite) would reclaim. Zero on backends that free immediately.
    fn reclaimable_pages(&self) -> u64 {
        0
    }

    /// Mirrors backend activity (buffer pool, fault injections) into
    /// `metrics` under `{prefix}.…` series. Default: nothing to observe.
    /// Wrappers ([`crate::FaultBackend`]) forward to the inner backend.
    fn attach_metrics(&self, metrics: &rcube_obs::Metrics, prefix: &str) {
        let _ = (metrics, prefix);
    }
}

/// The in-memory simulator backend: objects in a map, I/O *charged* but
/// never performed. Thread-safe (`RwLock` map + atomic catalog) so a
/// built cube can be queried from multiple threads.
#[derive(Debug, Default)]
pub struct MemBackend {
    objects: RwLock<HashMap<PageId, Arc<[u8]>>>,
    /// Catalog root + 1; 0 = none (atomic Option<u64> without a lock).
    catalog: AtomicU64,
}

impl MemBackend {
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageBackend for MemBackend {
    fn put(&self, disk: &DiskSim, data: Vec<u8>) -> Result<PageId, StorageError> {
        let pages = disk.pages_for(data.len());
        let ids = disk.alloc_pages(pages);
        let first = ids[0];
        for id in &ids {
            disk.write(*id);
        }
        self.objects.write().unwrap().insert(first, data.into());
        Ok(first)
    }

    fn overwrite(&self, disk: &DiskSim, first: PageId, data: Vec<u8>) -> Result<(), StorageError> {
        let pages = disk.pages_for(data.len());
        for i in 0..pages as u64 {
            disk.write(PageId(first.0 + i));
        }
        self.objects.write().unwrap().insert(first, data.into());
        Ok(())
    }

    fn get(&self, disk: &DiskSim, first: PageId) -> Result<Arc<[u8]>, StorageError> {
        let data = self.peek(first)?;
        disk.read_span(first, data.len());
        Ok(data)
    }

    fn peek(&self, first: PageId) -> Result<Arc<[u8]>, StorageError> {
        self.objects.read().unwrap().get(&first).cloned().ok_or(StorageError::MissingObject(first))
    }

    fn size_of(&self, first: PageId) -> Option<usize> {
        self.objects.read().unwrap().get(&first).map(|d| d.len())
    }

    fn total_bytes(&self) -> usize {
        self.objects.read().unwrap().values().map(|d| d.len()).sum()
    }

    fn object_count(&self) -> usize {
        self.objects.read().unwrap().len()
    }

    fn clear_cache(&self) {}

    fn catalog(&self) -> Option<PageId> {
        match self.catalog.load(Ordering::Acquire) {
            0 => None,
            v => Some(PageId(v - 1)),
        }
    }

    fn set_catalog(&self, first: PageId) -> Result<(), StorageError> {
        self.catalog.store(first.0 + 1, Ordering::Release);
        Ok(())
    }

    fn retire(&self, first: PageId) -> Result<(), StorageError> {
        // Frees the bytes immediately; in-flight readers holding the
        // `Arc` keep their snapshot, matching the COW contract.
        self.objects.write().unwrap().remove(&first);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_round_trips() {
        let disk = DiskSim::new(100, 0);
        let be = MemBackend::new();
        let id = be.put(&disk, vec![9u8; 250]).unwrap();
        assert_eq!(be.size_of(id), Some(250));
        assert_eq!(be.total_bytes(), 250);
        assert_eq!(be.object_count(), 1);
        let back = be.get(&disk, id).unwrap();
        assert_eq!(&back[..], &[9u8; 250][..]);
        // 250 bytes over 100-byte pages: 3 physical reads, 3 writes.
        let s = disk.stats().snapshot();
        assert_eq!(s.disk_reads, 3);
        assert_eq!(s.writes, 3);
    }

    #[test]
    fn mem_backend_missing_object_is_typed() {
        let disk = DiskSim::with_defaults();
        let be = MemBackend::new();
        assert!(matches!(be.get(&disk, PageId(5)), Err(StorageError::MissingObject(PageId(5)))));
    }

    #[test]
    fn mem_backend_catalog_round_trips() {
        let be = MemBackend::new();
        assert_eq!(be.catalog(), None);
        be.set_catalog(PageId(0)).unwrap();
        assert_eq!(be.catalog(), Some(PageId(0)));
        be.set_catalog(PageId(41)).unwrap();
        assert_eq!(be.catalog(), Some(PageId(41)));
    }
}
