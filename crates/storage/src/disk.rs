//! The simulated block device and a byte-addressed page store.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use crate::buffer::LruBuffer;
use crate::stats::IoStats;
use crate::DEFAULT_PAGE_SIZE;

/// Identifier of a 4 KB (by default) page on the simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// A simulated block device with an LRU buffer pool.
///
/// Components (indexes, cuboid stores, signature stores) allocate page ids
/// from the device and *charge* reads/writes against it; the shared
/// [`IoStats`] then report the paper's "number of disk accesses" metric.
///
/// Interior mutability keeps the call sites ergonomic: query processors hold
/// `&DiskSim` and charge I/O without threading `&mut` through every search
/// routine.
#[derive(Debug)]
pub struct DiskSim {
    page_size: usize,
    stats: Arc<IoStats>,
    buffer: RefCell<LruBuffer>,
    next_page: RefCell<u64>,
}

impl DiskSim {
    /// Creates a device with the given page size (bytes) and buffer pool
    /// capacity (pages).
    pub fn new(page_size: usize, buffer_pages: usize) -> Self {
        Self {
            page_size,
            stats: IoStats::new_shared(),
            buffer: RefCell::new(LruBuffer::new(buffer_pages)),
            next_page: RefCell::new(0),
        }
    }

    /// Device with the thesis defaults: 4 KB pages, 256-page buffer (1 MB).
    pub fn with_defaults() -> Self {
        Self::new(DEFAULT_PAGE_SIZE, 256)
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Shared I/O counters.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// Allocates a fresh page id.
    pub fn alloc_page(&self) -> PageId {
        let mut next = self.next_page.borrow_mut();
        let id = PageId(*next);
        *next += 1;
        id
    }

    /// Allocates `n` consecutive page ids (for multi-page objects).
    pub fn alloc_pages(&self, n: usize) -> Vec<PageId> {
        (0..n).map(|_| self.alloc_page()).collect()
    }

    /// Charges a read of `page`; returns `true` if the buffer absorbed it.
    pub fn read(&self, page: PageId) -> bool {
        let hit = self.buffer.borrow_mut().touch(page);
        self.stats.record_read(hit);
        hit
    }

    /// Charges a read of every page covering `bytes` of payload starting at
    /// `first` (objects larger than one page occupy consecutive ids).
    pub fn read_span(&self, first: PageId, bytes: usize) {
        let pages = self.pages_for(bytes);
        for i in 0..pages as u64 {
            self.read(PageId(first.0 + i));
        }
    }

    /// Charges a write of `page` (write-through; also populates the buffer).
    pub fn write(&self, page: PageId) {
        self.buffer.borrow_mut().touch(page);
        self.stats.record_write();
    }

    /// Charges a tuple-level random access (e.g. fetching one row by tid via
    /// a non-clustered index, the dominant cost of the DBMS baseline).
    pub fn random_access(&self) {
        self.stats.record_random();
    }

    /// Number of pages needed to hold `bytes` of payload (at least one).
    pub fn pages_for(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.page_size).max(1)
    }

    /// Clears the buffer pool (cold-cache measurement point).
    pub fn clear_buffer(&self) {
        self.buffer.borrow_mut().clear();
    }

    /// Resets the I/O counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }
}

impl Default for DiskSim {
    fn default() -> Self {
        Self::with_defaults()
    }
}

/// A byte-addressed object store on top of [`DiskSim`].
///
/// Each stored object owns one or more consecutive pages; reading the object
/// charges one read per covering page. This is how partial signatures,
/// cuboid cells and base blocks are "persisted" in the reproduction.
#[derive(Debug, Default)]
pub struct PageStore {
    objects: RefCell<HashMap<PageId, Arc<[u8]>>>,
}

impl PageStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `data` on `disk`, returning the first page id of the object.
    pub fn put(&self, disk: &DiskSim, data: Vec<u8>) -> PageId {
        let pages = disk.pages_for(data.len());
        let ids = disk.alloc_pages(pages);
        let first = ids[0];
        for id in &ids {
            disk.write(*id);
        }
        self.objects.borrow_mut().insert(first, data.into());
        first
    }

    /// Replaces the object rooted at `first` (same id, new bytes). Charges
    /// writes for the covering pages.
    pub fn overwrite(&self, disk: &DiskSim, first: PageId, data: Vec<u8>) {
        let pages = disk.pages_for(data.len());
        for i in 0..pages as u64 {
            disk.write(PageId(first.0 + i));
        }
        self.objects.borrow_mut().insert(first, data.into());
    }

    /// Reads the object rooted at `first`, charging I/O for every covering
    /// page. Panics if the object does not exist (a store-level invariant
    /// violation, not a user error).
    pub fn get(&self, disk: &DiskSim, first: PageId) -> Vec<u8> {
        self.get_bytes(disk, first).to_vec()
    }

    /// Zero-copy read: charges the same I/O as [`PageStore::get`] but hands
    /// back a shared handle to the page bytes instead of copying them.
    /// Query processors keep the handle in their block buffer and parse
    /// borrowed posting-list views (`rcube_core::idlist`-style) directly
    /// over it.
    pub fn get_bytes(&self, disk: &DiskSim, first: PageId) -> Arc<[u8]> {
        let objects = self.objects.borrow();
        let data = objects
            .get(&first)
            .unwrap_or_else(|| panic!("PageStore::get: missing object at {first:?}"));
        disk.read_span(first, data.len());
        Arc::clone(data)
    }

    /// Object size in bytes without charging I/O (catalog lookup).
    pub fn size_of(&self, first: PageId) -> Option<usize> {
        self.objects.borrow().get(&first).map(|d| d.len())
    }

    /// Total stored bytes across all objects (materialized-size metric).
    pub fn total_bytes(&self) -> usize {
        self.objects.borrow().values().map(|d| d.len()).sum()
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.borrow().len()
    }

    /// True when no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.objects.borrow().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_charges_miss_then_hit() {
        let disk = DiskSim::new(4096, 4);
        let p = disk.alloc_page();
        assert!(!disk.read(p));
        assert!(disk.read(p));
        let s = disk.stats().snapshot();
        assert_eq!(s.logical_reads, 2);
        assert_eq!(s.disk_reads, 1);
    }

    #[test]
    fn span_reads_cover_all_pages() {
        let disk = DiskSim::new(100, 16);
        let first = disk.alloc_page();
        let _rest = disk.alloc_pages(2);
        disk.read_span(first, 250); // 3 pages
        assert_eq!(disk.stats().snapshot().logical_reads, 3);
    }

    #[test]
    fn page_store_round_trips_and_charges() {
        let disk = DiskSim::new(100, 0); // no buffer: all reads physical
        let store = PageStore::new();
        let data: Vec<u8> = (0..=255).collect();
        let id = store.put(&disk, data.clone());
        assert_eq!(store.size_of(id), Some(256));
        disk.reset_stats();
        let back = store.get(&disk, id);
        assert_eq!(back, data);
        // 256 bytes over 100-byte pages => 3 physical reads.
        assert_eq!(disk.stats().snapshot().disk_reads, 3);
    }

    #[test]
    fn get_bytes_is_shared_not_copied() {
        let disk = DiskSim::new(100, 0);
        let store = PageStore::new();
        let id = store.put(&disk, vec![7u8; 300]);
        disk.reset_stats();
        let a = store.get_bytes(&disk, id);
        let b = store.get_bytes(&disk, id);
        // Same allocation both times (zero-copy), I/O charged each read.
        assert!(std::ptr::eq(a.as_ptr(), b.as_ptr()));
        assert_eq!(disk.stats().snapshot().logical_reads, 6); // 2 × 3 pages
        assert_eq!(&a[..], &[7u8; 300][..]);
    }

    #[test]
    fn overwrite_replaces_bytes() {
        let disk = DiskSim::with_defaults();
        let store = PageStore::new();
        let id = store.put(&disk, vec![1, 2, 3]);
        store.overwrite(&disk, id, vec![9]);
        assert_eq!(store.get(&disk, id), vec![9]);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn pages_for_rounds_up() {
        let disk = DiskSim::new(4096, 0);
        assert_eq!(disk.pages_for(0), 1);
        assert_eq!(disk.pages_for(1), 1);
        assert_eq!(disk.pages_for(4096), 1);
        assert_eq!(disk.pages_for(4097), 2);
    }

    #[test]
    fn alloc_pages_are_consecutive() {
        let disk = DiskSim::with_defaults();
        let ids = disk.alloc_pages(3);
        assert_eq!(ids[1].0, ids[0].0 + 1);
        assert_eq!(ids[2].0, ids[0].0 + 2);
    }
}
