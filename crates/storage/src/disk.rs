//! The metered block device and the byte-addressed page store.
//!
//! [`DiskSim`] is the I/O *meter*: components allocate page ids and charge
//! reads/writes against its shared [`IoStats`], with an id-level LRU
//! buffer deciding hit vs physical read. It is fully thread-safe — atomic
//! allocator, and the buffer is lock-striped
//! ([`crate::buffer::StripedLruBuffer`]) the same way the byte-caching
//! `BufferPool` is, so cursor-heavy concurrent workloads charging hits
//! against one shared device no longer serialize on a single mutex.
//!
//! [`PageStore`] holds real object bytes behind a pluggable
//! [`PageBackend`]: the in-memory simulator by default, or a checksummed
//! cube file ([`crate::FileBackend`]) for persistent, reopenable cubes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use rcube_obs::{Counter, Metrics};

use crate::backend::{MemBackend, PageBackend, StorageError};
use crate::buffer::StripedLruBuffer;
use crate::file::{FileBackend, DEFAULT_POOL_PAGES};
use crate::stats::IoStats;
use crate::DEFAULT_PAGE_SIZE;

/// Identifier of a 4 KB (by default) page on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// A simulated block device with an LRU buffer pool.
///
/// Components (indexes, cuboid stores, signature stores) allocate page ids
/// from the device and *charge* reads/writes against it; the shared
/// [`IoStats`] then report the paper's "number of disk accesses" metric.
///
/// Interior mutability keeps the call sites ergonomic: query processors
/// hold `&DiskSim` and charge I/O without threading `&mut` through every
/// search routine. All interior state is thread-safe (lock-striped buffer
/// + atomics), so `&DiskSim` can be shared across query threads.
#[derive(Debug)]
pub struct DiskSim {
    page_size: usize,
    stats: Arc<IoStats>,
    buffer: StripedLruBuffer,
    next_page: AtomicU64,
    /// Live I/O counters, resolved once by [`DiskSim::attach_metrics`].
    metrics: OnceLock<DiskMetricSet>,
}

/// Pre-resolved counter handles mirroring [`IoStats`] into a registry.
#[derive(Debug)]
struct DiskMetricSet {
    logical_reads: Counter,
    disk_reads: Counter,
    buffer_hits: Counter,
    writes: Counter,
    random_accesses: Counter,
}

impl DiskSim {
    /// Creates a device with the given page size (bytes) and buffer pool
    /// capacity (pages).
    pub fn new(page_size: usize, buffer_pages: usize) -> Self {
        Self {
            page_size,
            stats: IoStats::new_shared(),
            buffer: StripedLruBuffer::new(buffer_pages),
            next_page: AtomicU64::new(0),
            metrics: OnceLock::new(),
        }
    }

    /// Mirrors the device's I/O activity into `metrics` as live counters
    /// (`disk.logical_reads`, `disk.reads`, `disk.buffer_hits`,
    /// `disk.writes`, `disk.random_accesses`). Resolves handles once; a
    /// second attach is a no-op. Unlike [`Self::reset_stats`], these
    /// counters never reset — they are cumulative device history.
    pub fn attach_metrics(&self, metrics: &Metrics) {
        let _ = self.metrics.set(DiskMetricSet {
            logical_reads: metrics.counter("disk.logical_reads"),
            disk_reads: metrics.counter("disk.reads"),
            buffer_hits: metrics.counter("disk.buffer_hits"),
            writes: metrics.counter("disk.writes"),
            random_accesses: metrics.counter("disk.random_accesses"),
        });
    }

    /// Device with the thesis defaults: 4 KB pages, 256-page buffer (1 MB).
    pub fn with_defaults() -> Self {
        Self::new(DEFAULT_PAGE_SIZE, 256)
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Shared I/O counters.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// Allocates a fresh page id.
    pub fn alloc_page(&self) -> PageId {
        PageId(self.next_page.fetch_add(1, Ordering::Relaxed))
    }

    /// Allocates `n` consecutive page ids (for multi-page objects).
    pub fn alloc_pages(&self, n: usize) -> Vec<PageId> {
        let first = self.next_page.fetch_add(n as u64, Ordering::Relaxed);
        (0..n as u64).map(|i| PageId(first + i)).collect()
    }

    /// Charges a read of `page`; returns `true` if the buffer absorbed it.
    pub fn read(&self, page: PageId) -> bool {
        let hit = self.buffer.touch(page);
        self.stats.record_read(hit);
        if let Some(ms) = self.metrics.get() {
            ms.logical_reads.inc();
            if hit { &ms.buffer_hits } else { &ms.disk_reads }.inc();
        }
        hit
    }

    /// Charges a read of every page covering `bytes` of payload starting at
    /// `first` (objects larger than one page occupy consecutive ids).
    pub fn read_span(&self, first: PageId, bytes: usize) {
        let pages = self.pages_for(bytes);
        for i in 0..pages as u64 {
            self.read(PageId(first.0 + i));
        }
    }

    /// Charges a write of `page` (write-through; also populates the buffer).
    pub fn write(&self, page: PageId) {
        self.buffer.touch(page);
        self.stats.record_write();
        if let Some(ms) = self.metrics.get() {
            ms.writes.inc();
        }
    }

    /// Charges a tuple-level random access (e.g. fetching one row by tid via
    /// a non-clustered index, the dominant cost of the DBMS baseline).
    pub fn random_access(&self) {
        self.stats.record_random();
        if let Some(ms) = self.metrics.get() {
            ms.random_accesses.inc();
        }
    }

    /// Number of pages needed to hold `bytes` of payload (at least one).
    pub fn pages_for(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.page_size).max(1)
    }

    /// Clears the buffer pool (cold-cache measurement point).
    pub fn clear_buffer(&self) {
        self.buffer.clear();
    }

    /// Resets the I/O counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }
}

impl Default for DiskSim {
    fn default() -> Self {
        Self::with_defaults()
    }
}

/// A byte-addressed object store over a pluggable [`PageBackend`].
///
/// Each stored object owns one or more consecutive pages; reading the
/// object charges one read per covering page against the metering
/// [`DiskSim`]. [`PageStore::new`] yields the in-memory simulator backend;
/// [`PageStore::create_file`] / [`PageStore::open_file`] target a real
/// cube file with checksummed pages and a byte-caching buffer pool.
///
/// The infallible methods (`put`, `get`, `get_bytes`, `overwrite`) keep
/// the historical panic-on-invariant-violation contract for the in-memory
/// hot paths; the `try_*` variants surface typed [`StorageError`]s and are
/// what persistence-aware code (save/open, integrity scrubs, serving from
/// possibly-corrupt files) should call.
#[derive(Debug, Clone)]
pub struct PageStore {
    backend: Arc<dyn PageBackend>,
}

impl Default for PageStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PageStore {
    /// In-memory store (deterministic simulator backend).
    pub fn new() -> Self {
        Self { backend: Arc::new(MemBackend::new()) }
    }

    /// Store over an explicit backend.
    pub fn with_backend(backend: Arc<dyn PageBackend>) -> Self {
        Self { backend }
    }

    /// Creates a fresh cube file at `path` (truncating an existing one).
    pub fn create_file(
        path: impl AsRef<std::path::Path>,
        page_size: usize,
        pool_pages: usize,
    ) -> Result<Self, StorageError> {
        Ok(Self { backend: Arc::new(FileBackend::create(path, page_size, pool_pages)?) })
    }

    /// [`Self::create_file`] with explicit [`crate::FileOptions`]
    /// (fault plans, I/O mode) — the vacuum path uses this to thread a
    /// scripted crash plan into the temp file it compacts into.
    pub fn create_file_with(
        path: impl AsRef<std::path::Path>,
        page_size: usize,
        opts: crate::FileOptions,
    ) -> Result<Self, StorageError> {
        Ok(Self { backend: Arc::new(FileBackend::create_with(path, page_size, opts)?) })
    }

    /// Opens an existing cube file read-only with the given pool capacity.
    pub fn open_file(
        path: impl AsRef<std::path::Path>,
        pool_pages: usize,
    ) -> Result<Self, StorageError> {
        Ok(Self { backend: Arc::new(FileBackend::open(path, pool_pages)?) })
    }

    /// Opens an existing cube file with the default pool capacity.
    pub fn open_file_default(path: impl AsRef<std::path::Path>) -> Result<Self, StorageError> {
        Self::open_file(path, DEFAULT_POOL_PAGES)
    }

    /// Opens an existing cube file for writing: appends land after the
    /// newest committed generation, [`Self::flush`] commits the next one.
    pub fn open_file_writable(
        path: impl AsRef<std::path::Path>,
        pool_pages: usize,
    ) -> Result<Self, StorageError> {
        Ok(Self { backend: Arc::new(FileBackend::open_writable(path, pool_pages)?) })
    }

    /// Opens an existing cube file read-only, pinned on its *previous*
    /// generation (scrub verification before a rollback).
    pub fn open_file_previous(
        path: impl AsRef<std::path::Path>,
        pool_pages: usize,
    ) -> Result<Self, StorageError> {
        Ok(Self { backend: Arc::new(FileBackend::open_previous(path, pool_pages)?) })
    }

    /// The backing device.
    pub fn backend(&self) -> &Arc<dyn PageBackend> {
        &self.backend
    }

    /// Stores `data`, charging writes to `disk`; returns the first page id.
    pub fn put(&self, disk: &DiskSim, data: Vec<u8>) -> PageId {
        self.try_put(disk, data).unwrap_or_else(|e| panic!("PageStore::put: {e}"))
    }

    /// Fallible [`PageStore::put`].
    pub fn try_put(&self, disk: &DiskSim, data: Vec<u8>) -> Result<PageId, StorageError> {
        self.backend.put(disk, data)
    }

    /// Replaces the object rooted at `first` (same id, new bytes). Charges
    /// writes for the covering pages.
    pub fn overwrite(&self, disk: &DiskSim, first: PageId, data: Vec<u8>) {
        self.backend
            .overwrite(disk, first, data)
            .unwrap_or_else(|e| panic!("PageStore::overwrite: {e}"))
    }

    /// Reads the object rooted at `first`, charging I/O for every covering
    /// page. Panics if the object does not exist (a store-level invariant
    /// violation, not a user error).
    pub fn get(&self, disk: &DiskSim, first: PageId) -> Vec<u8> {
        self.get_bytes(disk, first).to_vec()
    }

    /// Zero-copy read: charges the same I/O as [`PageStore::get`] but hands
    /// back a shared handle to the object bytes instead of copying them.
    /// Over a file backend the handle is a view into a buffer-pool frame;
    /// query processors parse borrowed posting-list views
    /// (`rcube_core::idlist`-style) directly over it.
    pub fn get_bytes(&self, disk: &DiskSim, first: PageId) -> Arc<[u8]> {
        self.try_get_bytes(disk, first)
            .unwrap_or_else(|e| panic!("PageStore::get_bytes at {first:?}: {e}"))
    }

    /// Fallible [`PageStore::get_bytes`]: the hardened read path. Every
    /// page is validated (type, length, CRC) before bytes are handed out;
    /// truncation or corruption comes back as a typed [`StorageError`].
    pub fn try_get_bytes(&self, disk: &DiskSim, first: PageId) -> Result<Arc<[u8]>, StorageError> {
        self.backend.get(disk, first)
    }

    /// Reads an object without charging I/O (catalog/bookkeeping reads).
    pub fn peek(&self, first: PageId) -> Result<Arc<[u8]>, StorageError> {
        self.backend.peek(first)
    }

    /// Object size in bytes without charging I/O (catalog lookup).
    pub fn size_of(&self, first: PageId) -> Option<usize> {
        self.backend.size_of(first)
    }

    /// Total stored bytes across all objects (materialized-size metric).
    pub fn total_bytes(&self) -> usize {
        self.backend.total_bytes()
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.backend.object_count()
    }

    /// True when no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops backend-cached bytes (cold-cache measurement point; no-op for
    /// the in-memory backend, whose hits live in the `DiskSim` buffer).
    pub fn clear_cache(&self) {
        self.backend.clear_cache();
    }

    /// Per-shard buffer-pool occupancy and hit/miss/eviction counters, or
    /// `None` on backends without a byte cache (the in-memory simulator).
    pub fn pool_stats(&self) -> Option<crate::buffer::PoolStats> {
        self.backend.pool_stats()
    }

    /// Mirrors the backend's cache/fault activity into `metrics` under
    /// `{prefix}.…` series (e.g. `grid.pool.hits`). No-op on backends
    /// with nothing to observe (the in-memory simulator).
    pub fn attach_metrics(&self, metrics: &rcube_obs::Metrics, prefix: &str) {
        self.backend.attach_metrics(metrics, prefix);
    }

    /// Commits the backend state (on generational backends: appends the
    /// allocation map and stamps the inactive superblock slot with the
    /// next generation — the crash-atomic publish point).
    pub fn flush(&self) -> Result<(), StorageError> {
        self.backend.flush()
    }

    /// The committed generation this store serves, if the backend has
    /// generational commits (`None` for the in-memory simulator).
    pub fn generation(&self) -> Option<u64> {
        self.backend.generation()
    }

    /// Marks the object rooted at `first` unreachable from the next
    /// generation (COW maintenance retired it).
    pub fn retire(&self, first: PageId) -> Result<(), StorageError> {
        self.backend.retire(first)
    }

    /// Pages retired by COW maintenance that a vacuum would reclaim.
    pub fn reclaimable_pages(&self) -> u64 {
        self.backend.reclaimable_pages()
    }

    /// True when the backend rejects writes (a reopened cube file).
    pub fn read_only(&self) -> bool {
        self.backend.read_only()
    }

    /// The catalog root recorded on the device, if any.
    pub fn catalog(&self) -> Option<PageId> {
        self.backend.catalog()
    }

    /// Records the catalog root on the device.
    pub fn set_catalog(&self, first: PageId) -> Result<(), StorageError> {
        self.backend.set_catalog(first)
    }

    /// Stores the catalog object and records it as the root (excluded
    /// from the materialized totals on persistent backends).
    pub fn put_catalog(&self, disk: &DiskSim, data: Vec<u8>) -> Result<PageId, StorageError> {
        self.backend.put_catalog(disk, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_charges_miss_then_hit() {
        let disk = DiskSim::new(4096, 4);
        let p = disk.alloc_page();
        assert!(!disk.read(p));
        assert!(disk.read(p));
        let s = disk.stats().snapshot();
        assert_eq!(s.logical_reads, 2);
        assert_eq!(s.disk_reads, 1);
    }

    #[test]
    fn span_reads_cover_all_pages() {
        let disk = DiskSim::new(100, 16);
        let first = disk.alloc_page();
        let _rest = disk.alloc_pages(2);
        disk.read_span(first, 250); // 3 pages
        assert_eq!(disk.stats().snapshot().logical_reads, 3);
    }

    #[test]
    fn page_store_round_trips_and_charges() {
        let disk = DiskSim::new(100, 0); // no buffer: all reads physical
        let store = PageStore::new();
        let data: Vec<u8> = (0..=255).collect();
        let id = store.put(&disk, data.clone());
        assert_eq!(store.size_of(id), Some(256));
        disk.reset_stats();
        let back = store.get(&disk, id);
        assert_eq!(back, data);
        // 256 bytes over 100-byte pages => 3 physical reads.
        assert_eq!(disk.stats().snapshot().disk_reads, 3);
    }

    #[test]
    fn get_bytes_is_shared_not_copied() {
        let disk = DiskSim::new(100, 0);
        let store = PageStore::new();
        let id = store.put(&disk, vec![7u8; 300]);
        disk.reset_stats();
        let a = store.get_bytes(&disk, id);
        let b = store.get_bytes(&disk, id);
        // Same allocation both times (zero-copy), I/O charged each read.
        assert!(std::ptr::eq(a.as_ptr(), b.as_ptr()));
        assert_eq!(disk.stats().snapshot().logical_reads, 6); // 2 × 3 pages
        assert_eq!(&a[..], &[7u8; 300][..]);
    }

    #[test]
    fn overwrite_replaces_bytes() {
        let disk = DiskSim::with_defaults();
        let store = PageStore::new();
        let id = store.put(&disk, vec![1, 2, 3]);
        store.overwrite(&disk, id, vec![9]);
        assert_eq!(store.get(&disk, id), vec![9]);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn pages_for_rounds_up() {
        let disk = DiskSim::new(4096, 0);
        assert_eq!(disk.pages_for(0), 1);
        assert_eq!(disk.pages_for(1), 1);
        assert_eq!(disk.pages_for(4096), 1);
        assert_eq!(disk.pages_for(4097), 2);
    }

    #[test]
    fn alloc_pages_are_consecutive() {
        let disk = DiskSim::with_defaults();
        let ids = disk.alloc_pages(3);
        assert_eq!(ids[1].0, ids[0].0 + 1);
        assert_eq!(ids[2].0, ids[0].0 + 2);
    }

    #[test]
    fn try_get_bytes_reports_missing_object() {
        let disk = DiskSim::with_defaults();
        let store = PageStore::new();
        assert!(matches!(
            store.try_get_bytes(&disk, PageId(3)),
            Err(StorageError::MissingObject(PageId(3)))
        ));
    }

    #[test]
    fn disk_is_shareable_across_threads() {
        let disk = DiskSim::new(4096, 8);
        let store = PageStore::new();
        let ids: Vec<PageId> = (0..8).map(|i| store.put(&disk, vec![i as u8; 64])).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for &id in &ids {
                        let bytes = store.get_bytes(&disk, id);
                        assert_eq!(bytes.len(), 64);
                    }
                });
            }
        });
        // 4 threads × 8 objects × 1 page each, all charged.
        assert_eq!(disk.stats().snapshot().logical_reads, 32);
    }

    #[test]
    fn file_backed_store_round_trips_via_pagestore() {
        let mut path = std::env::temp_dir();
        path.push(format!("rcube_pagestore_{}", std::process::id()));
        let disk = DiskSim::with_defaults();
        let id = {
            let store = PageStore::create_file(&path, 512, 8).unwrap();
            let id = store.put(&disk, b"persistent bytes".to_vec());
            store.set_catalog(id).unwrap();
            store.flush().unwrap();
            id
        };
        let store = PageStore::open_file(&path, 8).unwrap();
        assert!(store.read_only());
        assert_eq!(store.catalog(), Some(id));
        assert_eq!(&store.get(&disk, id)[..], b"persistent bytes");
        std::fs::remove_file(&path).ok();
    }
}
