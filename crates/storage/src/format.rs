//! The on-disk cube file format (v4: crash-safe generational commits,
//! persisted vacuum accounting, cross-process writer exclusion).
//!
//! A cube file is a single file of fixed-size pages. Pages 0 and 1 are
//! the two **superblock slots**; every other page carries an 8-byte
//! header followed by payload. All integers are little-endian.
//!
//! # Double-buffered superblock (pages 0–1, first 80 bytes of each slot)
//!
//! Each slot holds one serialized superblock describing a **generation**
//! — a complete, immutable snapshot of the cube. A commit never touches
//! the slot the current generation lives in: the writer appends the new
//! generation's pages, syncs them, then stamps the *inactive* slot with a
//! generation number one higher and syncs again. [`elect_superblock`]
//! picks the winner at open: the CRC-valid slot with the highest
//! generation. A crash anywhere in a commit therefore leaves either the
//! old generation (new slot torn or unwritten → its CRC fails → the old
//! slot wins) or the new one (both syncs landed) — never a mix.
//!
//! | offset | size | field                                             |
//! |--------|------|---------------------------------------------------|
//! | 0      | 8    | magic `b"RCUBEFS1"`                               |
//! | 8      | 2    | format version ([`FORMAT_VERSION`])               |
//! | 10     | 2    | flags (reserved, zero)                            |
//! | 12     | 4    | page size in bytes                                |
//! | 16     | 8    | page count (including both superblock slots)      |
//! | 24     | 8    | catalog object first page (`u64::MAX` = none)     |
//! | 32     | 8    | total object payload bytes                        |
//! | 40     | 8    | object count                                      |
//! | 48     | 8    | allocation-map first page (`u64::MAX` = none)     |
//! | 56     | 4    | allocation-map page count                         |
//! | 60     | 8    | generation number (monotonically increasing)      |
//! | 68     | 8    | retired (vacuum-reclaimable) page count           |
//! | 76     | 4    | CRC-32 over bytes 0..76                           |
//!
//! The version field is the compatibility gate: readers reject files with
//! an unknown version instead of guessing at the layout. Files written by
//! the v1 single-superblock layout or the v3 72-byte superblock (no
//! retired-page field) fail the version gate and must be re-saved.
//!
//! The retired-page count is the background scheduler's watermark
//! signal: COW maintenance retires old copies of patched objects, and
//! persisting the tally per generation means `reclaimable_pages()` — and
//! therefore the vacuum trigger — survives a process restart instead of
//! resetting to zero.
//!
//! **Observability.** Every maintenance transition over this format is
//! mirrored into the `rcube_obs` metrics registry: `SignatureCube::commit`
//! records `maintenance.commits` and the `maintenance.generation` gauge
//! (the generation field above), COW patches record
//! `maintenance.cells_replaced` / `maintenance.pages_appended`,
//! `vacuum_to` records `maintenance.pages_reclaimed`, `scrub_path`
//! records clean vs rolled-back outcomes, and scripted fault injections
//! trip `*.fault.write_trips` / `*.fault.read_trips` (see
//! `crate::fault`). The buffer pool serving these pages exports live
//! `{prefix}.pool.hits/misses/evictions` counters.
//!
//! # Page header (every page except the superblock, 8 bytes)
//!
//! | offset | size | field                                              |
//! |--------|------|----------------------------------------------------|
//! | 0      | 4    | CRC-32 over bytes 4..page_size (header + payload + padding) |
//! | 4      | 1    | page type ([`PageType`])                           |
//! | 5      | 1    | flags (bit 0: a continuation page follows)         |
//! | 6      | 2    | payload length in this page                        |
//!
//! Unused tail bytes are written as zero and covered by the checksum, so a
//! bit flip anywhere in the page — header, payload or padding — fails
//! verification.
//!
//! # Objects
//!
//! A stored object occupies one [`PageType::ObjFirst`] page followed by
//! zero or more consecutive [`PageType::ObjCont`] pages. The first page's
//! payload starts with the object's total length as a `u32`, then the data;
//! continuation pages are pure data. The continuation flag chains the
//! covering pages, and the length prefix bounds the read — a truncated
//! chain surfaces as [`StorageError::TruncatedObject`], never as a short
//! silent read.
//!
//! # Allocation map
//!
//! [`PageType::AllocMap`] pages hold a bitmap with one bit per page
//! (bit set = allocated). The writer allocates append-only, so the map is
//! dense per generation; it exists so the vacuum pass can account for
//! pages unreachable from the live generation, and it gives `open` a
//! cheap structural check: every page below the elected generation's
//! `page_count` must be marked allocated.
//!
//! # Catalogs
//!
//! The superblock's catalog pointer names one ordinary object whose first
//! byte is a *kind tag* interpreted by the cube layer (`rcube_core`):
//! `1` grid cube, `2` ranking fragments, `4` signature cube. Readers
//! reject a mismatched tag with a typed error, so a catalog-layout change
//! is shipped as a new tag rather than a silent reinterpretation. Tag `3`
//! (the original signature-cube catalog) is retired: it carried a per-node
//! `sid → partial` pair list per cell; tag `4` stores, per cell, the
//! signature depth plus one *first-SID* entry per partial — BFS write
//! order makes SIDs strictly increasing, so that sorted array replaces
//! the map (binary search) and shrinks the catalog from O(nodes) to
//! O(partials). Files written with tag 3 fail to open with a
//! kind-mismatch error and must be re-saved.
//!
//! # Generations, commits and copy-on-write
//!
//! Every committed generation is an immutable value — the cube-algebra
//! view of OLAP instances as values that operators map between. The rules:
//!
//! * **Pages of a committed generation are immutable.** A writer patches
//!   an object by appending a *new* copy (new page ids) and publishing a
//!   catalog that points at it; the untouched objects keep their pages,
//!   shared byte-identically across generations. In-place `overwrite` is
//!   legal only on pages appended after the last commit (an object the
//!   current, still-unpublished generation owns outright); overwriting a
//!   committed page is rejected with
//!   [`StorageError::ImmutableGeneration`].
//! * **Commit protocol.** Append data pages → append the allocation map →
//!   `fsync` → stamp the inactive superblock slot with `generation + 1` →
//!   `fsync`. The single slot write is the publish point; everything
//!   before it is invisible to an election.
//! * **Readers pin their generation at open.** A read-only handle loads
//!   the elected slot's metadata once into atomics and never reads past
//!   that generation's `page_count`; later commits only append pages and
//!   flip the *other* slot, so a pinned reader keeps streaming its
//!   generation byte-identically with no coordination whatsoever — there
//!   is no reader-quiescence requirement anywhere in the format.
//! * **Rollback.** Because the previous generation's slot is intact until
//!   the commit after next, a scrub that finds the newest generation
//!   corrupt can zero its slot and the file reopens on the previous one.
//!
//! # Concurrency model
//!
//! The format is **single-writer, many-reader**:
//!
//! * **Who may write.** One writable handle (`create` or
//!   `open_writable`); `put`/`overwrite`/`flush` serialize on one writer
//!   mutex inside [`crate::FileBackend`]. A file opened with `open` is
//!   *read-only*: every mutator returns [`StorageError::ReadOnly`], and
//!   nothing in the open path ever writes. Readers race appends and
//!   commits freely — see the generation rules above.
//! * **What read-only means.** A read-only handle's pages are immutable
//!   (its generation is committed), so readers need no coordination at
//!   all: each page fetch is an independent positional read (`pread`)
//!   validated against its CRC, and file metadata (page count, catalog
//!   pointer, totals) is loaded once from the elected slot into atomics.
//!   Any number of threads may share one [`crate::FileBackend`] /
//!   [`crate::PageStore`] handle.
//! * **Buffer-pool shards.** Cached object frames live in a lock-striped
//!   [`crate::BufferPool`]: frames are immutable `Arc<[u8]>` snapshots
//!   keyed by first page id, each shard an independent page-weighted LRU
//!   under its own mutex. A frame handed out stays valid (readers hold the
//!   `Arc`) even if its shard evicts it concurrently.
//! * **Node-cache invalidation.** Decoded-signature caches layered above
//!   this format (`rcube_core`'s shared node cache) key entries by
//!   `(first page id of the partial, SID)`. Page ids are never reused —
//!   the writer appends, and COW gives a patched object fresh ids — so a
//!   key uniquely names immutable bytes across generations. Maintenance
//!   invalidates only the page ids it retired; entries for untouched
//!   partials stay valid through a commit.
//!
//! # Locking & swap protocol
//!
//! The single-writer rule above is enforced *across processes* by an
//! advisory lock file, and page reclamation is published by an atomic
//! whole-file swap. Both are implemented in `crate::lock` and the
//! vacuum path of `rcube_core`; this section is the normative spec.
//!
//! **Lock file.** A writable handle on `<path>` owns `<path>.lock`:
//!
//! * *Layout*: the owner's PID in ASCII decimal, nothing else.
//! * *Acquisition*: `O_CREAT | O_EXCL` creation (the one primitive every
//!   target filesystem makes atomic; no `flock` binding is used — this
//!   workspace is dependency-free). Creation failure means the lock is
//!   held: the owner PID is read and probed for liveness (`/proc/<pid>`
//!   on Linux; elsewhere there is no portable probe, so owners are
//!   conservatively presumed alive and stale locks need manual removal).
//!   A live owner → typed `StorageError::WriterLocked { owner_pid }`,
//!   fail-fast, never blocks. A dead or unparseable owner → *stale
//!   takeover*: remove the file and retry (bounded), so a crashed
//!   writer's lock heals itself on the next open.
//! * *Release*: unlink on drop of the writable handle. A writer that
//!   dies without unlinking is exactly the stale case above.
//!
//! **Vacuum swap.** Compaction rewrites the live generation into a
//! sibling temp file (`<path>.vacuum`) and publishes it atomically:
//!
//! 1. acquire `<path>.lock` (writers and other vacuums excluded for the
//!    whole window; readers are never excluded),
//! 2. open the source read-only and copy its live objects into the temp
//!    file (a complete v4 cube file with a fresh generation history),
//! 3. `fsync` the temp file,
//! 4. `rename(2)` it over `<path>` — the atomic publish point,
//! 5. `fsync` the parent directory, release the lock.
//!
//! **Crash model.** A crash before the rename leaves `<path>` untouched
//! (temp garbage is overwritten by the next vacuum); a crash after it
//! leaves the fully-synced compacted file. Every boundary is
//! fault-scriptable (`crate::fault::SwapStage`) and swept in tests: any
//! crash reopens to a valid generation — old file or new, never a torn
//! hybrid. Readers survive the swap because rename only unlinks the
//! *name*: a pinned reader's file descriptor keeps the retired inode
//! alive and byte-identical until the handle drops, while every open
//! after the rename elects the compacted file. The compacted file's
//! page ids are all fresh, so caches keyed by first page id are
//! invalidated wholesale by swapping the cube handle.
//!
//! # Shard manifest
//!
//! A *partitioned* cube set is N ordinary cube files — each one a
//! complete, self-checksummed unit in the format above, with its own
//! buffer pool and generation history — plus one small manifest file
//! binding them into a set (see [`crate::manifest`] for the exact
//! layout). The manifest records the engine kind, and per shard the cube
//! file name (relative, so the whole directory relocates) and the global
//! tid range it serves; a trailing CRC-32 stamps the whole thing.
//!
//! * **Versioning.** The manifest carries its own version field
//!   ([`crate::manifest::MANIFEST_VERSION`]), gated at open exactly like
//!   cube-file versions: unknown versions are a typed
//!   [`StorageError::UnsupportedVersion`], never a layout guess.
//! * **Open election.** Publication is temp-file + `fsync` + atomic
//!   `rename(2)` — the same single-candidate election as the vacuum
//!   swap: a crash mid-publish leaves the old manifest, a crash after
//!   leaves the new one, and the CRC rejects torn or bit-flipped bytes.
//!   Each shard file then runs its *own* double-buffered superblock
//!   election at open, so manifest durability and shard durability
//!   compose without coordination.
//! * **Degradation unit.** Because shards share nothing, a corrupted
//!   shard file fails its own open/verify with a typed error while the
//!   remaining shards keep serving — the serving layer quarantines
//!   per-(route, shard), not per-route.
//!
//! # WAL & delta merge protocol
//!
//! The LSM delta layer (`rcube_core::delta`) pairs a cube file with an
//! append-only write-ahead log at the sibling path `<path>.wal`. The WAL
//! is *not* a paged file: it is a flat CRC-framed record stream, because
//! appends must be cheap (one write + `fdatasync`) and torn tails must
//! be distinguishable from body corruption.
//!
//! **Header** (24 bytes): magic `b"RCUBWAL1"` (8) · version `u16` LE ·
//! flags `u16` (reserved zero) · `flushed_seq u64` LE (the highest
//! sequence number folded into the cube file by a completed flush) ·
//! CRC-32 over bytes 0..20. Bad magic, unknown version, or a header CRC
//! mismatch are typed errors ([`StorageError::BadMagic`],
//! [`StorageError::UnsupportedVersion`],
//! [`StorageError::ChecksumMismatch`]).
//!
//! **Records**: each frame is `[len u32][crc u32][payload]`, CRC-32 over
//! the payload. Payloads start `seq u64 · kind u8 · tid u32`; kinds are
//! *pending upsert* (1, followed by `nsel u16 · u32×nsel · npt u16 ·
//! f64-bits u64×npt`), *pending delete* (2), and *applied upsert* (3,
//! same body as 1) — a flushed-but-live delta tuple whose selection
//! values the cube file does not store, retained so later incremental
//! maintenance can re-derive its cuboid cells after an R-tree
//! rebalance.
//!
//! **Replay classification** (the single load-bearing rule): a frame
//! whose declared body runs to or past end-of-file, or whose CRC fails
//! on the *last* frame, is a **torn tail** — the crash-mid-append case —
//! and replay succeeds with the clean prefix (the writable open
//! truncates the tail). A CRC or structure failure with more valid data
//! *behind* it cannot be a torn append and surfaces as a typed error
//! instead: that is body corruption, and the delta layer refuses to
//! serve a guess.
//!
//! **Flush compaction** reuses the vacuum's publish protocol verbatim: a
//! new WAL image (header with the advanced `flushed_seq` + the live
//! applied records, no pending section) is written to `<path>.wal.new`,
//! fsynced, and renamed over `<path>.wal` — crash-scriptable at the same
//! [`crate::fault::SwapStage`] boundaries. The flush orders cube-commit
//! *before* WAL-rewrite, so every crash point is idempotent: before the
//! commit the old generation plus the full WAL replay; between commit
//! and rename the replayed pending ops shadow identical base data and
//! the next flush re-applies them as a no-op; after the rename both
//! files agree.

use crate::backend::StorageError;

/// File magic, bytes 0..8 of the superblock.
pub const MAGIC: [u8; 8] = *b"RCUBEFS1";

/// Current format version (superblock bytes 8..10).
pub const FORMAT_VERSION: u16 = 4;

/// Bytes of per-page header preceding the payload.
pub const PAGE_HEADER: usize = 8;

/// Serialized superblock length (the rest of a slot page is zero padding).
pub const SUPERBLOCK_LEN: usize = 80;

/// Number of superblock slot pages at the head of the file.
pub const SUPERBLOCK_SLOTS: u64 = 2;

/// First data page (pages 0..[`SUPERBLOCK_SLOTS`] are the slots).
pub const DATA_START: u64 = SUPERBLOCK_SLOTS;

/// Smallest supported page size (must hold the superblock).
pub const MIN_PAGE_SIZE: usize = 128;

/// Largest supported page size (payload length is a `u16`).
pub const MAX_PAGE_SIZE: usize = 65_536;

/// Sentinel for "no page" in superblock pointers.
pub const NO_PAGE: u64 = u64::MAX;

/// Page type byte (header offset 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PageType {
    /// First page of a stored object (payload begins with the total length).
    ObjFirst = 1,
    /// Continuation page of a multi-page object.
    ObjCont = 2,
    /// Allocation-bitmap page.
    AllocMap = 3,
}

impl PageType {
    /// Decodes a type byte, reporting the offending page on failure.
    pub fn decode(byte: u8, page: u64) -> Result<Self, StorageError> {
        match byte {
            1 => Ok(Self::ObjFirst),
            2 => Ok(Self::ObjCont),
            3 => Ok(Self::AllocMap),
            other => Err(StorageError::BadPageType { page, found: other }),
        }
    }
}

/// Continuation flag (header offset 5, bit 0): more pages of this object
/// follow on the next page id.
pub const FLAG_CONTINUES: u8 = 0b0000_0001;

// --- CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) -----------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 of `data` (IEEE polynomial, as used by zip/png).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// --- Page encode / verify ---------------------------------------------------

/// Fills `page` (a zeroed `page_size` buffer) with a header + payload and
/// stamps the checksum. `payload` must fit `page.len() - PAGE_HEADER`.
pub fn encode_page(page: &mut [u8], ptype: PageType, flags: u8, payload: &[u8]) {
    debug_assert!(payload.len() <= page.len() - PAGE_HEADER);
    page[4] = ptype as u8;
    page[5] = flags;
    page[6..8].copy_from_slice(&(payload.len() as u16).to_le_bytes());
    page[PAGE_HEADER..PAGE_HEADER + payload.len()].copy_from_slice(payload);
    // Zero the tail so the checksum covers deterministic padding.
    for b in &mut page[PAGE_HEADER + payload.len()..] {
        *b = 0;
    }
    let crc = crc32(&page[4..]);
    page[0..4].copy_from_slice(&crc.to_le_bytes());
}

/// Verified view of a page: its type, continuation flag and payload slice.
#[derive(Debug)]
pub struct PageView<'a> {
    pub ptype: PageType,
    pub continues: bool,
    pub payload: &'a [u8],
}

/// Validates a raw page (CRC first, then type and length) and returns the
/// payload view. `page_id` only labels the error.
pub fn decode_page(page: &[u8], page_id: u64) -> Result<PageView<'_>, StorageError> {
    if page.len() < PAGE_HEADER {
        return Err(StorageError::BadLength { page: page_id, len: page.len(), max: PAGE_HEADER });
    }
    let stored = u32::from_le_bytes(page[0..4].try_into().unwrap());
    if crc32(&page[4..]) != stored {
        return Err(StorageError::ChecksumMismatch { page: page_id });
    }
    let ptype = PageType::decode(page[4], page_id)?;
    let len = u16::from_le_bytes(page[6..8].try_into().unwrap()) as usize;
    let max = page.len() - PAGE_HEADER;
    if len > max {
        return Err(StorageError::BadLength { page: page_id, len, max });
    }
    Ok(PageView {
        ptype,
        continues: page[5] & FLAG_CONTINUES != 0,
        payload: &page[PAGE_HEADER..PAGE_HEADER + len],
    })
}

// --- Superblock -------------------------------------------------------------

/// Decoded superblock fields (one slot = one committed generation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    pub page_size: u32,
    pub page_count: u64,
    /// First page of the catalog object, if one was recorded.
    pub catalog_first: Option<u64>,
    pub total_bytes: u64,
    pub object_count: u64,
    /// First page of the allocation bitmap, if flushed.
    pub alloc_first: Option<u64>,
    pub alloc_pages: u32,
    /// Monotonically increasing commit number; the valid slot with the
    /// highest generation wins the election at open.
    pub generation: u64,
    /// Pages retired by COW maintenance as of this generation — the
    /// vacuum scheduler's persisted watermark signal.
    pub retired_pages: u64,
}

impl Superblock {
    /// Encodes into the first [`SUPERBLOCK_LEN`] bytes of `page` (a slot
    /// page), zeroing the rest.
    pub fn encode(&self, page: &mut [u8]) {
        for b in page.iter_mut() {
            *b = 0;
        }
        page[0..8].copy_from_slice(&MAGIC);
        page[8..10].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        // 10..12 flags: zero.
        page[12..16].copy_from_slice(&self.page_size.to_le_bytes());
        page[16..24].copy_from_slice(&self.page_count.to_le_bytes());
        page[24..32].copy_from_slice(&self.catalog_first.unwrap_or(NO_PAGE).to_le_bytes());
        page[32..40].copy_from_slice(&self.total_bytes.to_le_bytes());
        page[40..48].copy_from_slice(&self.object_count.to_le_bytes());
        page[48..56].copy_from_slice(&self.alloc_first.unwrap_or(NO_PAGE).to_le_bytes());
        page[56..60].copy_from_slice(&self.alloc_pages.to_le_bytes());
        page[60..68].copy_from_slice(&self.generation.to_le_bytes());
        page[68..76].copy_from_slice(&self.retired_pages.to_le_bytes());
        let crc = crc32(&page[0..76]);
        page[76..80].copy_from_slice(&crc.to_le_bytes());
    }

    /// Decodes and validates one slot: magic, checksum, version, page-size
    /// bounds. `slot_page` labels errors (0 or 1).
    pub fn decode_slot(page: &[u8], slot_page: u64) -> Result<Self, StorageError> {
        if page.len() < SUPERBLOCK_LEN {
            return Err(StorageError::BadLength {
                page: slot_page,
                len: page.len(),
                max: SUPERBLOCK_LEN,
            });
        }
        if page[0..8] != MAGIC {
            return Err(StorageError::BadMagic);
        }
        let stored = u32::from_le_bytes(page[76..80].try_into().unwrap());
        if crc32(&page[0..76]) != stored {
            return Err(StorageError::ChecksumMismatch { page: slot_page });
        }
        let version = u16::from_le_bytes(page[8..10].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(StorageError::UnsupportedVersion(version));
        }
        let page_size = u32::from_le_bytes(page[12..16].try_into().unwrap());
        if !(MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&(page_size as usize)) {
            return Err(StorageError::BadLength {
                page: slot_page,
                len: page_size as usize,
                max: MAX_PAGE_SIZE,
            });
        }
        let word = |o: usize| u64::from_le_bytes(page[o..o + 8].try_into().unwrap());
        let optional = |v: u64| if v == NO_PAGE { None } else { Some(v) };
        Ok(Self {
            page_size,
            page_count: word(16),
            catalog_first: optional(word(24)),
            total_bytes: word(32),
            object_count: word(40),
            alloc_first: optional(word(48)),
            alloc_pages: u32::from_le_bytes(page[56..60].try_into().unwrap()),
            generation: word(60),
            retired_pages: word(68),
        })
    }

    /// [`Self::decode_slot`] for slot 0 (compat helper for tests).
    pub fn decode(page: &[u8]) -> Result<Self, StorageError> {
        Self::decode_slot(page, 0)
    }
}

/// Elects the live generation from the two slot images: the valid slot
/// with the highest generation wins (ties cannot happen — a commit always
/// increments). An invalid slot is a *candidate rejection*, not an error:
/// a crash mid-commit legitimately leaves one slot torn. Only when both
/// slots fail does the open fail, reporting slot 0's error (a foreign
/// file surfaces as [`StorageError::BadMagic`], a corrupt one as a
/// checksum mismatch).
pub fn elect_superblock(slot0: &[u8], slot1: &[u8]) -> Result<(Superblock, u64), StorageError> {
    let c0 = Superblock::decode_slot(slot0, 0);
    let c1 = Superblock::decode_slot(slot1, 1);
    match (c0, c1) {
        (Ok(a), Ok(b)) => {
            if a.generation >= b.generation {
                Ok((a, 0))
            } else {
                Ok((b, 1))
            }
        }
        (Ok(a), Err(_)) => Ok((a, 0)),
        (Err(_), Ok(b)) => Ok((b, 1)),
        (Err(e0), Err(_)) => Err(e0),
    }
}

// --- Bounded byte reader / writer (catalog serialization) -------------------

/// Append-only byte writer used for cube catalogs.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed (u64) byte run.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Raw byte run, no length prefix (fixed-size fields like magics).
    pub fn put_bytes_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Bounded reader over catalog bytes: every read is checked, so a
/// truncated or garbled catalog surfaces as [`StorageError::Malformed`]
/// instead of a panic.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if self.remaining() < n {
            return Err(StorageError::Malformed("catalog truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, StorageError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Checked u64 → usize for counts; rejects absurd values early so a
    /// corrupted count cannot drive a huge allocation.
    pub fn count(&mut self, limit: usize) -> Result<usize, StorageError> {
        let v = self.u64()?;
        if v > limit as u64 {
            return Err(StorageError::Malformed("catalog count out of range"));
        }
        Ok(v as usize)
    }

    /// Length-prefixed byte run written by [`ByteWriter::put_bytes`].
    pub fn bytes(&mut self) -> Result<&'a [u8], StorageError> {
        let n = self.count(self.remaining())?;
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn page_round_trips() {
        let mut page = vec![0u8; 256];
        encode_page(&mut page, PageType::ObjFirst, FLAG_CONTINUES, b"hello world");
        let v = decode_page(&page, 7).unwrap();
        assert_eq!(v.ptype, PageType::ObjFirst);
        assert!(v.continues);
        assert_eq!(v.payload, b"hello world");
    }

    #[test]
    fn flipped_bit_fails_checksum() {
        let mut page = vec![0u8; 256];
        encode_page(&mut page, PageType::ObjCont, 0, b"payload");
        for offset in [4usize, 5, 6, 20, 255] {
            let mut bad = page.clone();
            bad[offset] ^= 0x40;
            match decode_page(&bad, 3) {
                Err(StorageError::ChecksumMismatch { page: 3 }) => {}
                other => panic!("offset {offset}: expected checksum error, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_crc_field_detected() {
        let mut page = vec![0u8; 128];
        encode_page(&mut page, PageType::ObjFirst, 0, b"x");
        page[1] ^= 0xFF;
        assert!(matches!(decode_page(&page, 0), Err(StorageError::ChecksumMismatch { .. })));
    }

    fn sample_sb(generation: u64) -> Superblock {
        Superblock {
            page_size: 4096,
            page_count: 42,
            catalog_first: Some(41),
            total_bytes: 123_456,
            object_count: 17,
            alloc_first: None,
            alloc_pages: 0,
            generation,
            retired_pages: 9,
        }
    }

    #[test]
    fn superblock_round_trips() {
        let sb = sample_sb(7);
        let mut page = vec![0u8; SUPERBLOCK_LEN];
        sb.encode(&mut page);
        assert_eq!(Superblock::decode(&page).unwrap(), sb);
    }

    #[test]
    fn superblock_rejects_bad_magic_and_version() {
        let sb = Superblock {
            page_size: 4096,
            page_count: 2,
            catalog_first: None,
            total_bytes: 0,
            object_count: 0,
            alloc_first: None,
            alloc_pages: 0,
            generation: 1,
            retired_pages: 0,
        };
        let mut page = vec![0u8; SUPERBLOCK_LEN];
        sb.encode(&mut page);

        let mut bad = page.clone();
        bad[0] = b'X';
        assert!(matches!(Superblock::decode(&bad), Err(StorageError::BadMagic)));

        let mut bad = page.clone();
        bad[8] = 99; // version bump without re-stamping the CRC…
        assert!(matches!(Superblock::decode(&bad), Err(StorageError::ChecksumMismatch { .. })));
        // …and with a valid CRC it must fail the version gate instead.
        let crc = crc32(&bad[0..76]);
        bad[76..80].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(Superblock::decode(&bad), Err(StorageError::UnsupportedVersion(99))));
    }

    #[test]
    fn election_picks_highest_valid_generation() {
        let mut s0 = vec![0u8; SUPERBLOCK_LEN];
        let mut s1 = vec![0u8; SUPERBLOCK_LEN];
        sample_sb(4).encode(&mut s0);
        sample_sb(5).encode(&mut s1);
        let (sb, slot) = elect_superblock(&s0, &s1).unwrap();
        assert_eq!((sb.generation, slot), (5, 1));

        // Newer slot torn mid-commit: the older generation must win.
        let mut torn = s1.clone();
        torn[30] ^= 0xFF;
        let (sb, slot) = elect_superblock(&s0, &torn).unwrap();
        assert_eq!((sb.generation, slot), (4, 0));

        // Slot 0 newer after the next commit flips sides.
        sample_sb(6).encode(&mut s0);
        let (sb, slot) = elect_superblock(&s0, &s1).unwrap();
        assert_eq!((sb.generation, slot), (6, 0));

        // Both invalid: slot 0's error surfaces (BadMagic for foreign files).
        let garbage = vec![0x42u8; SUPERBLOCK_LEN];
        assert!(matches!(elect_superblock(&garbage, &garbage), Err(StorageError::BadMagic)));
    }

    #[test]
    fn byte_reader_bounds_checked() {
        let mut w = ByteWriter::new();
        w.put_u32(7);
        w.put_bytes(b"abc");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.bytes().unwrap(), b"abc");
        assert!(matches!(r.u64(), Err(StorageError::Malformed(_))));
    }
}
