//! Shared I/O counters.
//!
//! The evaluation sections of the thesis plot three cost families:
//! execution time, *number of disk accesses* (Figures 4.13, 5.10, 5.17, 7.4)
//! and in-memory working-set sizes. [`IoStats`] is the single source of truth
//! for the I/O family; every simulated component charges it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Atomic counters shared between a [`crate::DiskSim`] and its clients.
///
/// All counters are monotonically increasing; use [`IoStats::snapshot`] and
/// [`IoSnapshot::delta`] to meter an individual query.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Page reads requested by clients (buffer hits included).
    pub logical_reads: AtomicU64,
    /// Page reads that missed the buffer pool and hit the simulated disk.
    pub disk_reads: AtomicU64,
    /// Page writes.
    pub writes: AtomicU64,
    /// Random (non-clustered) accesses; tracked separately because the
    /// baseline approaches of Section 3.5 are dominated by them.
    pub random_accesses: AtomicU64,
}

impl IoStats {
    /// Creates a fresh shared counter set.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records a logical page read; `hit` tells whether the buffer absorbed it.
    #[inline]
    pub fn record_read(&self, hit: bool) {
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
        if !hit {
            self.disk_reads.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a page write.
    #[inline]
    pub fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a random access (tuple-level fetch not served by a scan).
    #[inline]
    pub fn record_random(&self) {
        self.random_accesses.fetch_add(1, Ordering::Relaxed);
    }

    /// Captures the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            disk_reads: self.disk_reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            random_accesses: self.random_accesses.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.logical_reads.store(0, Ordering::Relaxed);
        self.disk_reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.random_accesses.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`IoStats`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    pub logical_reads: u64,
    pub disk_reads: u64,
    pub writes: u64,
    pub random_accesses: u64,
}

impl IoSnapshot {
    /// Counter increase between `self` (earlier) and `later`.
    pub fn delta(&self, later: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            logical_reads: later.logical_reads - self.logical_reads,
            disk_reads: later.disk_reads - self.disk_reads,
            writes: later.writes - self.writes,
            random_accesses: later.random_accesses - self.random_accesses,
        }
    }

    /// Total I/O operations (reads + writes) that reached the disk.
    pub fn total_disk_ops(&self) -> u64 {
        self.disk_reads + self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let stats = IoStats::default();
        stats.record_read(true);
        stats.record_read(false);
        stats.record_write();
        stats.record_random();
        let snap = stats.snapshot();
        assert_eq!(snap.logical_reads, 2);
        assert_eq!(snap.disk_reads, 1);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.random_accesses, 1);
        stats.reset();
        assert_eq!(stats.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn snapshot_delta_subtracts() {
        let stats = IoStats::default();
        stats.record_read(false);
        let before = stats.snapshot();
        stats.record_read(false);
        stats.record_read(true);
        let after = stats.snapshot();
        let d = before.delta(&after);
        assert_eq!(d.logical_reads, 2);
        assert_eq!(d.disk_reads, 1);
        assert_eq!(d.total_disk_ops(), 1);
    }
}
