//! Paged block storage for the ranking-cube reproduction.
//!
//! Every experiment in the paper reports *disk accesses* at page granularity
//! (4 KB pages by default, matching the thesis' R-tree/SQL-Server setup).
//! This crate provides:
//!
//! * [`IoStats`] — shared atomic counters for logical reads, physical
//!   (buffer-miss) reads, writes and random accesses;
//! * [`DiskSim`] — a thread-safe metered block device with an LRU buffer
//!   that charges physical reads only on buffer misses;
//! * [`PageBackend`] — the pluggable device trait behind [`PageStore`],
//!   with two implementations: [`MemBackend`] (the deterministic
//!   in-memory simulator) and [`FileBackend`] (a real single-file store
//!   with a superblock, CRC-checksummed pages, an allocation map, a
//!   lock-free positional-read path and a lock-striped byte-caching
//!   [`BufferPool`] — see [`format`] for the on-disk layout and the
//!   concurrency model);
//! * [`PageStore`] — the byte-addressed object store used to persist
//!   serialized structures (cuboid cells, base blocks, partial
//!   signatures), in memory or in a reopenable cube file;
//! * [`bits`] — bit-level readers/writers used by the signature coding
//!   schemes of Chapter 4 (`BL`/`RL`/`PI`/`PC` produce real binary strings).
//!
//! The in-memory device preserves the paper's *relative* cost model (who
//! does more I/O); the file device adds real persistence with the same
//! metering, so cold-open, warm-pool and in-memory runs are directly
//! comparable.

pub mod backend;
pub mod bits;
pub mod buffer;
pub mod disk;
pub mod fault;
pub mod file;
pub mod format;
pub mod lock;
pub mod manifest;
pub mod stats;

pub use backend::{MemBackend, PageBackend, StorageError};
pub use bits::{bits_for, BitReader, BitWriter, PackedBits};
pub use buffer::{
    BufferPool, LruBuffer, PoolShardStats, PoolStats, StripedLruBuffer, DEFAULT_POOL_SHARDS,
};
pub use disk::{DiskSim, PageId, PageStore};
pub use fault::{CrashMode, FaultBackend, FaultPlan, SwapStage, WriteOutcome};
pub use file::{FileBackend, FileOptions, IoMode, DEFAULT_POOL_PAGES};
pub use format::{ByteReader, ByteWriter};
pub use lock::{lock_path_for, WriterLock};
pub use manifest::{ShardEngineKind, ShardEntry, ShardManifest, MANIFEST_VERSION};
pub use stats::{IoSnapshot, IoStats};

/// Default page size used throughout the reproduction (bytes).
///
/// The thesis fixes R-tree / signature pages at 4 KB (Section 4.4.1).
pub const DEFAULT_PAGE_SIZE: usize = 4096;
