//! Simulated block storage for the ranking-cube reproduction.
//!
//! Every experiment in the paper reports *disk accesses* at page granularity
//! (4 KB pages by default, matching the thesis' R-tree/SQL-Server setup).
//! This crate provides:
//!
//! * [`IoStats`] — shared counters for logical reads, physical (buffer-miss)
//!   reads, writes and random accesses;
//! * [`DiskSim`] — a simulated block device with an LRU buffer pool that
//!   charges physical reads only on buffer misses;
//! * [`PageStore`] — a byte-addressed page store on top of [`DiskSim`] used to
//!   persist serialized structures (partial signatures, tid lists);
//! * [`bits`] — bit-level readers/writers used by the signature coding
//!   schemes of Chapter 4 (`BL`/`RL`/`PI`/`PC` produce real binary strings).
//!
//! The device is in-memory: the simulation preserves the paper's *relative*
//! cost model (who does more I/O) rather than absolute disk latencies.

pub mod bits;
pub mod buffer;
pub mod disk;
pub mod stats;

pub use bits::{bits_for, BitReader, BitWriter};
pub use buffer::LruBuffer;
pub use disk::{DiskSim, PageId, PageStore};
pub use stats::{IoSnapshot, IoStats};

/// Default page size used throughout the reproduction (bytes).
///
/// The thesis fixes R-tree / signature pages at 4 KB (Section 4.4.1).
pub const DEFAULT_PAGE_SIZE: usize = 4096;
