//! Random query workloads (Table 3.9).
//!
//! Each experiment reports the average over a batch of randomly issued
//! queries. A query draws `s` distinct selection dimensions with random
//! values, `r` ranking dimensions, and a linear ranking function whose
//! weight skewness is `u = max w / min w`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::relation::Relation;
use crate::selection::Selection;

/// Workload knobs (defaults = Table 3.9).
#[derive(Debug, Clone)]
pub struct WorkloadParams {
    /// Number of selection conditions `s`.
    pub num_conditions: usize,
    /// Number of ranking dimensions involved in the function `r`.
    pub num_ranking: usize,
    /// Number of requested results `k`.
    pub k: usize,
    /// Query skewness `u` (ratio of max to min weight).
    pub skewness: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        Self { num_conditions: 2, num_ranking: 2, k: 10, skewness: 1.0, seed: 7 }
    }
}

/// A generated query: Boolean part + linear ranking part.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// The multi-dimensional selection.
    pub selection: Selection,
    /// Ranking dimensions used by the function (sorted).
    pub ranking_dims: Vec<usize>,
    /// Weights aligned with `ranking_dims`, all positive, spread over
    /// `[1, u]`.
    pub weights: Vec<f64>,
    /// Number of results requested.
    pub k: usize,
}

impl QuerySpec {
    /// Weights expanded to the relation's full ranking arity (zeros on
    /// unused dimensions) — convenient when an engine scores full points.
    pub fn full_weights(&self, total_ranking_dims: usize) -> Vec<f64> {
        let mut w = vec![0.0; total_ranking_dims];
        for (d, wt) in self.ranking_dims.iter().zip(&self.weights) {
            w[*d] = *wt;
        }
        w
    }
}

/// Deterministic query generator over a relation's schema.
#[derive(Debug)]
pub struct QueryGen {
    params: WorkloadParams,
    rng: StdRng,
}

impl QueryGen {
    pub fn new(params: WorkloadParams) -> Self {
        let rng = StdRng::seed_from_u64(params.seed);
        Self { params, rng }
    }

    /// Draws the next query against `rel`'s schema.
    pub fn next_query(&mut self, rel: &Relation) -> QuerySpec {
        let schema = rel.schema();
        let s_total = schema.num_selection();
        let r_total = schema.num_ranking();
        let s = self.params.num_conditions.min(s_total);
        let r = self.params.num_ranking.min(r_total);

        let mut sel_dims: Vec<usize> = (0..s_total).collect();
        sel_dims.shuffle(&mut self.rng);
        sel_dims.truncate(s);
        let conds = sel_dims
            .into_iter()
            .map(|d| {
                let card = schema.selection_dim(d).cardinality();
                (d, self.rng.gen_range(0..card))
            })
            .collect();

        let mut rank_dims: Vec<usize> = (0..r_total).collect();
        rank_dims.shuffle(&mut self.rng);
        rank_dims.truncate(r);
        rank_dims.sort_unstable();

        // Weights spread over [1, u]: first weight 1, last weight u, rest
        // uniform in between — guarantees the requested skewness exactly.
        let u = self.params.skewness.max(1.0);
        let mut weights: Vec<f64> = (0..r)
            .map(|i| {
                if i == 0 {
                    1.0
                } else if i == r - 1 {
                    u
                } else {
                    self.rng.gen_range(1.0..=u)
                }
            })
            .collect();
        weights.shuffle(&mut self.rng);

        QuerySpec {
            selection: Selection::new(conds),
            ranking_dims: rank_dims,
            weights,
            k: self.params.k,
        }
    }

    /// A batch of `n` queries (the thesis averages over 20 per point).
    pub fn batch(&mut self, rel: &Relation, n: usize) -> Vec<QuerySpec> {
        (0..n).map(|_| self.next_query(rel)).collect()
    }
}

/// A Zipf(s) sampler over ranks `1..=n`: rank `r` is drawn with
/// probability proportional to `1 / r^s`. Deterministic given the RNG;
/// `s = 0` degenerates to uniform.
///
/// Implemented as a precomputed CDF + binary search — exact (no
/// rejection), O(n) setup, O(log n) per draw, plenty for workload
/// generation where `n` is a dimension cardinality.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Sampler over `n ≥ 1` ranks with exponent `s ≥ 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be finite and non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Draws a 0-based rank (0 is the hottest).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Zipf-skewed query generator: selection *values* are drawn from a
/// Zipf(`value_skew`) distribution over each dimension's domain instead
/// of uniformly, so a few hot cells receive most of the traffic — the
/// access pattern real serving workloads show. Everything else (dimension
/// choice, ranking weights) follows [`QueryGen`]'s rules. Seeded and
/// deterministic: two generators with equal params emit equal batches.
#[derive(Debug)]
pub struct ZipfQueryGen {
    params: WorkloadParams,
    value_skew: f64,
    rng: StdRng,
    /// One sampler per distinct cardinality seen, built lazily.
    samplers: std::collections::BTreeMap<usize, Zipf>,
}

impl ZipfQueryGen {
    /// `value_skew` is the Zipf exponent over each dimension's values
    /// (1.0 ≈ classic web-traffic skew; 0.0 = uniform).
    pub fn new(params: WorkloadParams, value_skew: f64) -> Self {
        let rng = StdRng::seed_from_u64(params.seed);
        Self { params, value_skew, rng, samplers: std::collections::BTreeMap::new() }
    }

    /// Draws the next query against `rel`'s schema.
    pub fn next_query(&mut self, rel: &Relation) -> QuerySpec {
        let schema = rel.schema();
        let s_total = schema.num_selection();
        let r_total = schema.num_ranking();
        let s = self.params.num_conditions.min(s_total);
        let r = self.params.num_ranking.min(r_total);

        let mut sel_dims: Vec<usize> = (0..s_total).collect();
        sel_dims.shuffle(&mut self.rng);
        sel_dims.truncate(s);
        let skew = self.value_skew;
        let mut conds = Vec::with_capacity(s);
        for d in sel_dims {
            let card = schema.selection_dim(d).cardinality() as usize;
            let zipf = self.samplers.entry(card).or_insert_with(|| Zipf::new(card.max(1), skew));
            // Hot rank 0 maps to value 0, so skew is visible in the raw
            // condition values (and shard benches can count hot cells).
            conds.push((d, zipf.sample(&mut self.rng) as u32));
        }

        let mut rank_dims: Vec<usize> = (0..r_total).collect();
        rank_dims.shuffle(&mut self.rng);
        rank_dims.truncate(r);
        rank_dims.sort_unstable();

        let u = self.params.skewness.max(1.0);
        let mut weights: Vec<f64> = (0..r)
            .map(|i| {
                if i == 0 {
                    1.0
                } else if i == r - 1 {
                    u
                } else {
                    self.rng.gen_range(1.0..=u)
                }
            })
            .collect();
        weights.shuffle(&mut self.rng);

        QuerySpec {
            selection: Selection::new(conds),
            ranking_dims: rank_dims,
            weights,
            k: self.params.k,
        }
    }

    /// A batch of `n` Zipf-skewed queries.
    pub fn batch(&mut self, rel: &Relation, n: usize) -> Vec<QuerySpec> {
        (0..n).map(|_| self.next_query(rel)).collect()
    }
}

/// Knobs for a mixed read/write stream ([`MixedWorkloadGen`]).
#[derive(Debug, Clone)]
pub struct MixedWorkloadParams {
    /// Query-side knobs (conditions, ranking dims, k, weight skew, seed).
    pub query: WorkloadParams,
    /// Zipf exponent over selection values (queries *and* inserted
    /// tuples draw from the same skewed hot set, like per-user traffic).
    pub value_skew: f64,
    /// Fraction of ops that are inserts, in `[0, 1]`.
    pub insert_fraction: f64,
    /// Fraction of ops that are deletes, in `[0, 1]`
    /// (`insert_fraction + delete_fraction ≤ 1`; the rest are queries).
    pub delete_fraction: f64,
}

impl Default for MixedWorkloadParams {
    fn default() -> Self {
        Self {
            query: WorkloadParams::default(),
            value_skew: 1.0,
            insert_fraction: 0.2,
            delete_fraction: 0.05,
        }
    }
}

/// One operation in a mixed read/write stream.
#[derive(Debug, Clone)]
pub enum WorkloadOp {
    /// A top-k query (same shape [`ZipfQueryGen`] emits).
    Query(QuerySpec),
    /// Ingest one tuple: selection values (Zipf-hot) + ranking point.
    Insert { sel: Vec<u32>, point: Vec<f64> },
    /// Delete the `victim_rank`-th *most recently inserted* live tuple
    /// (0 = newest), Zipf-skewed toward recent inserts. The caller maps
    /// ranks to tids — the generator has no view of allocation — and
    /// skips the op while nothing has been inserted yet.
    Delete { victim_rank: usize },
}

/// Seeded mixed read/write generator: interleaves [`ZipfQueryGen`]
/// queries with Zipf-hot inserts and recency-skewed deletes, so delta
/// benches measure skewed ingest+query interleavings instead of uniform
/// batches. Deterministic: equal params ⇒ equal streams.
#[derive(Debug)]
pub struct MixedWorkloadGen {
    params: MixedWorkloadParams,
    queries: ZipfQueryGen,
    rng: StdRng,
    samplers: std::collections::BTreeMap<usize, Zipf>,
    /// Live inserted-tuple count, maintained so delete victims rank over
    /// a real population.
    live_inserts: usize,
}

impl MixedWorkloadGen {
    pub fn new(params: MixedWorkloadParams) -> Self {
        assert!(
            params.insert_fraction >= 0.0
                && params.delete_fraction >= 0.0
                && params.insert_fraction + params.delete_fraction <= 1.0,
            "op fractions must be non-negative and sum to at most 1"
        );
        // Offset the op-mix RNG from the query RNG so interleaving
        // decisions don't perturb query shapes between parameterizations.
        let rng = StdRng::seed_from_u64(params.query.seed.wrapping_add(0x9E37_79B9));
        let queries = ZipfQueryGen::new(params.query.clone(), params.value_skew);
        Self { params, queries, rng, samplers: std::collections::BTreeMap::new(), live_inserts: 0 }
    }

    /// Draws the next op against `rel`'s schema.
    pub fn next_op(&mut self, rel: &Relation) -> WorkloadOp {
        let schema = rel.schema();
        let roll: f64 = self.rng.gen_range(0.0..1.0);
        if roll < self.params.insert_fraction {
            let skew = self.params.value_skew;
            let sel: Vec<u32> = (0..schema.num_selection())
                .map(|d| {
                    let card = schema.selection_dim(d).cardinality() as usize;
                    let zipf =
                        self.samplers.entry(card).or_insert_with(|| Zipf::new(card.max(1), skew));
                    zipf.sample(&mut self.rng) as u32
                })
                .collect();
            let point: Vec<f64> =
                (0..schema.num_ranking()).map(|_| self.rng.gen_range(0.0..1.0)).collect();
            self.live_inserts += 1;
            WorkloadOp::Insert { sel, point }
        } else if roll < self.params.insert_fraction + self.params.delete_fraction
            && self.live_inserts > 0
        {
            let zipf = Zipf::new(self.live_inserts, self.params.value_skew.max(0.5));
            let victim_rank = zipf.sample(&mut self.rng);
            self.live_inserts -= 1;
            WorkloadOp::Delete { victim_rank }
        } else {
            WorkloadOp::Query(self.queries.next_query(rel))
        }
    }

    /// A stream of `n` interleaved ops.
    pub fn stream(&mut self, rel: &Relation, n: usize) -> Vec<WorkloadOp> {
        (0..n).map(|_| self.next_op(rel)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SyntheticSpec;

    #[test]
    fn queries_respect_parameters() {
        let rel = SyntheticSpec { tuples: 100, ..Default::default() }.generate();
        let mut qg = QueryGen::new(WorkloadParams {
            num_conditions: 2,
            num_ranking: 2,
            k: 5,
            skewness: 3.0,
            seed: 1,
        });
        for q in qg.batch(&rel, 20) {
            assert_eq!(q.selection.len(), 2);
            assert_eq!(q.ranking_dims.len(), 2);
            assert_eq!(q.k, 5);
            let mx = q.weights.iter().cloned().fold(f64::MIN, f64::max);
            let mn = q.weights.iter().cloned().fold(f64::MAX, f64::min);
            assert!((mx / mn - 3.0).abs() < 1e-9);
            // Dimensions must be distinct and in-domain.
            let dims = q.selection.dims();
            assert!(dims.iter().all(|&d| d < 3));
        }
    }

    #[test]
    fn clamps_to_schema_arity() {
        let rel =
            SyntheticSpec { tuples: 10, selection_dims: 2, ranking_dims: 1, ..Default::default() }
                .generate();
        let mut qg = QueryGen::new(WorkloadParams {
            num_conditions: 5,
            num_ranking: 4,
            ..Default::default()
        });
        let q = qg.next_query(&rel);
        assert_eq!(q.selection.len(), 2);
        assert_eq!(q.ranking_dims.len(), 1);
    }

    #[test]
    fn full_weights_places_zeros() {
        let q = QuerySpec {
            selection: Selection::all(),
            ranking_dims: vec![0, 2],
            weights: vec![1.0, 2.0],
            k: 10,
        };
        assert_eq!(q.full_weights(4), vec![1.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let zipf = Zipf::new(20, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 20];
        for _ in 0..4000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Rank 0 must dominate the tail decisively under s = 1.2.
        assert!(counts[0] > counts[10] * 3, "head {} tail {}", counts[0], counts[10]);
        assert_eq!(counts.iter().sum::<usize>(), 4000);
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(c > 700, "uniform draw too skewed: {counts:?}");
        }
    }

    #[test]
    fn zipf_generator_is_deterministic_and_skewed() {
        let rel = SyntheticSpec { tuples: 200, ..Default::default() }.generate();
        let params = WorkloadParams { seed: 11, ..Default::default() };
        let mut a = ZipfQueryGen::new(params.clone(), 1.1);
        let mut b = ZipfQueryGen::new(params, 1.1);
        let qa = a.batch(&rel, 50);
        let qb = b.batch(&rel, 50);
        let mut zeros = 0usize;
        let mut total = 0usize;
        for (x, y) in qa.iter().zip(&qb) {
            assert_eq!(x.selection, y.selection);
            assert_eq!(x.weights, y.weights);
            for (_, v) in x.selection.conds() {
                total += 1;
                if *v == 0 {
                    zeros += 1;
                }
            }
        }
        // Under Zipf(1.1) over cardinality-20 domains, value 0 should take
        // far more than the uniform 1/20 share.
        assert!(zeros * 5 > total, "value 0 drew {zeros}/{total}");
    }

    #[test]
    fn mixed_stream_is_deterministic_and_mixes_ops() {
        let rel = SyntheticSpec { tuples: 100, ..Default::default() }.generate();
        let params = MixedWorkloadParams {
            insert_fraction: 0.3,
            delete_fraction: 0.1,
            ..Default::default()
        };
        let sa = MixedWorkloadGen::new(params.clone()).stream(&rel, 300);
        let sb = MixedWorkloadGen::new(params).stream(&rel, 300);
        assert_eq!(sa.len(), sb.len());
        let (mut q, mut i, mut d) = (0usize, 0usize, 0usize);
        for (a, b) in sa.iter().zip(&sb) {
            match (a, b) {
                (WorkloadOp::Query(x), WorkloadOp::Query(y)) => {
                    assert_eq!(x.selection, y.selection);
                    assert_eq!(x.weights, y.weights);
                    q += 1;
                }
                (WorkloadOp::Insert { sel: x, point: px }, WorkloadOp::Insert { sel: y, point: py }) => {
                    assert_eq!(x, y);
                    assert_eq!(px, py);
                    assert_eq!(x.len(), rel.schema().num_selection());
                    assert_eq!(px.len(), rel.schema().num_ranking());
                    i += 1;
                }
                (WorkloadOp::Delete { victim_rank: x }, WorkloadOp::Delete { victim_rank: y }) => {
                    assert_eq!(x, y);
                    d += 1;
                }
                other => panic!("streams diverged: {other:?}"),
            }
        }
        assert!(q > 100 && i > 40 && d > 5, "mix off: q={q} i={i} d={d}");
    }

    #[test]
    fn mixed_stream_never_deletes_before_inserting() {
        let rel = SyntheticSpec { tuples: 50, ..Default::default() }.generate();
        let params = MixedWorkloadParams {
            insert_fraction: 0.05,
            delete_fraction: 0.9,
            ..Default::default()
        };
        let mut live = 0usize;
        for op in MixedWorkloadGen::new(params).stream(&rel, 200) {
            match op {
                WorkloadOp::Insert { .. } => live += 1,
                WorkloadOp::Delete { victim_rank } => {
                    assert!(live > 0, "delete emitted with no live inserts");
                    assert!(victim_rank < live, "victim rank out of range");
                    live -= 1;
                }
                WorkloadOp::Query(_) => {}
            }
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let rel = SyntheticSpec { tuples: 50, ..Default::default() }.generate();
        let mut a = QueryGen::new(WorkloadParams::default());
        let mut b = QueryGen::new(WorkloadParams::default());
        for _ in 0..5 {
            let qa = a.next_query(&rel);
            let qb = b.next_query(&rel);
            assert_eq!(qa.selection, qb.selection);
            assert_eq!(qa.weights, qb.weights);
        }
    }
}
