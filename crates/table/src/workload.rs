//! Random query workloads (Table 3.9).
//!
//! Each experiment reports the average over a batch of randomly issued
//! queries. A query draws `s` distinct selection dimensions with random
//! values, `r` ranking dimensions, and a linear ranking function whose
//! weight skewness is `u = max w / min w`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::relation::Relation;
use crate::selection::Selection;

/// Workload knobs (defaults = Table 3.9).
#[derive(Debug, Clone)]
pub struct WorkloadParams {
    /// Number of selection conditions `s`.
    pub num_conditions: usize,
    /// Number of ranking dimensions involved in the function `r`.
    pub num_ranking: usize,
    /// Number of requested results `k`.
    pub k: usize,
    /// Query skewness `u` (ratio of max to min weight).
    pub skewness: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        Self { num_conditions: 2, num_ranking: 2, k: 10, skewness: 1.0, seed: 7 }
    }
}

/// A generated query: Boolean part + linear ranking part.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// The multi-dimensional selection.
    pub selection: Selection,
    /// Ranking dimensions used by the function (sorted).
    pub ranking_dims: Vec<usize>,
    /// Weights aligned with `ranking_dims`, all positive, spread over
    /// `[1, u]`.
    pub weights: Vec<f64>,
    /// Number of results requested.
    pub k: usize,
}

impl QuerySpec {
    /// Weights expanded to the relation's full ranking arity (zeros on
    /// unused dimensions) — convenient when an engine scores full points.
    pub fn full_weights(&self, total_ranking_dims: usize) -> Vec<f64> {
        let mut w = vec![0.0; total_ranking_dims];
        for (d, wt) in self.ranking_dims.iter().zip(&self.weights) {
            w[*d] = *wt;
        }
        w
    }
}

/// Deterministic query generator over a relation's schema.
#[derive(Debug)]
pub struct QueryGen {
    params: WorkloadParams,
    rng: StdRng,
}

impl QueryGen {
    pub fn new(params: WorkloadParams) -> Self {
        let rng = StdRng::seed_from_u64(params.seed);
        Self { params, rng }
    }

    /// Draws the next query against `rel`'s schema.
    pub fn next_query(&mut self, rel: &Relation) -> QuerySpec {
        let schema = rel.schema();
        let s_total = schema.num_selection();
        let r_total = schema.num_ranking();
        let s = self.params.num_conditions.min(s_total);
        let r = self.params.num_ranking.min(r_total);

        let mut sel_dims: Vec<usize> = (0..s_total).collect();
        sel_dims.shuffle(&mut self.rng);
        sel_dims.truncate(s);
        let conds = sel_dims
            .into_iter()
            .map(|d| {
                let card = schema.selection_dim(d).cardinality();
                (d, self.rng.gen_range(0..card))
            })
            .collect();

        let mut rank_dims: Vec<usize> = (0..r_total).collect();
        rank_dims.shuffle(&mut self.rng);
        rank_dims.truncate(r);
        rank_dims.sort_unstable();

        // Weights spread over [1, u]: first weight 1, last weight u, rest
        // uniform in between — guarantees the requested skewness exactly.
        let u = self.params.skewness.max(1.0);
        let mut weights: Vec<f64> = (0..r)
            .map(|i| {
                if i == 0 {
                    1.0
                } else if i == r - 1 {
                    u
                } else {
                    self.rng.gen_range(1.0..=u)
                }
            })
            .collect();
        weights.shuffle(&mut self.rng);

        QuerySpec {
            selection: Selection::new(conds),
            ranking_dims: rank_dims,
            weights,
            k: self.params.k,
        }
    }

    /// A batch of `n` queries (the thesis averages over 20 per point).
    pub fn batch(&mut self, rel: &Relation, n: usize) -> Vec<QuerySpec> {
        (0..n).map(|_| self.next_query(rel)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SyntheticSpec;

    #[test]
    fn queries_respect_parameters() {
        let rel = SyntheticSpec { tuples: 100, ..Default::default() }.generate();
        let mut qg = QueryGen::new(WorkloadParams {
            num_conditions: 2,
            num_ranking: 2,
            k: 5,
            skewness: 3.0,
            seed: 1,
        });
        for q in qg.batch(&rel, 20) {
            assert_eq!(q.selection.len(), 2);
            assert_eq!(q.ranking_dims.len(), 2);
            assert_eq!(q.k, 5);
            let mx = q.weights.iter().cloned().fold(f64::MIN, f64::max);
            let mn = q.weights.iter().cloned().fold(f64::MAX, f64::min);
            assert!((mx / mn - 3.0).abs() < 1e-9);
            // Dimensions must be distinct and in-domain.
            let dims = q.selection.dims();
            assert!(dims.iter().all(|&d| d < 3));
        }
    }

    #[test]
    fn clamps_to_schema_arity() {
        let rel =
            SyntheticSpec { tuples: 10, selection_dims: 2, ranking_dims: 1, ..Default::default() }
                .generate();
        let mut qg = QueryGen::new(WorkloadParams {
            num_conditions: 5,
            num_ranking: 4,
            ..Default::default()
        });
        let q = qg.next_query(&rel);
        assert_eq!(q.selection.len(), 2);
        assert_eq!(q.ranking_dims.len(), 1);
    }

    #[test]
    fn full_weights_places_zeros() {
        let q = QuerySpec {
            selection: Selection::all(),
            ranking_dims: vec![0, 2],
            weights: vec![1.0, 2.0],
            k: 10,
        };
        assert_eq!(q.full_weights(4), vec![1.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn generator_is_deterministic() {
        let rel = SyntheticSpec { tuples: 50, ..Default::default() }.generate();
        let mut a = QueryGen::new(WorkloadParams::default());
        let mut b = QueryGen::new(WorkloadParams::default());
        for _ in 0..5 {
            let qa = a.next_query(&rel);
            let qb = b.next_query(&rel);
            assert_eq!(qa.selection, qb.selection);
            assert_eq!(qa.weights, qb.weights);
        }
    }
}
