//! Synthetic data generators.
//!
//! Reproduces the data sets of the thesis' evaluation sections:
//!
//! * [`SyntheticSpec`] — `T` tuples, `S` selection dimensions of cardinality
//!   `C`, `R` ranking dimensions with distribution `S ∈ {E, C, A}`
//!   (uniform / correlated / anti-correlated — the standard skyline
//!   benchmark distributions; Table 3.8, Section 7.3.1).
//! * [`forest_cover`] — a statistical surrogate for the UCI Forest CoverType
//!   data set: 12 selection dimensions with the published cardinalities
//!   (255, 207, 185, 67, 7, 2×7) and 3 quantitative ranking dimensions with
//!   ≈2k–6k distinct values, mildly skewed. The real file is not available
//!   offline; the experiments only depend on these distributional facts
//!   (cardinality mix and value skew), which the surrogate preserves.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::relation::{Relation, RelationBuilder};
use crate::schema::{Dim, Schema};

/// Ranking-dimension distribution (`S` in the thesis' parameter tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataDist {
    /// `E`: independent uniform.
    Uniform,
    /// `C`: correlated — good in one dimension implies good in the others.
    Correlated,
    /// `A`: anti-correlated — good in one dimension implies bad in another.
    AntiCorrelated,
}

/// Parameters of a synthetic data set (Table 3.8 defaults).
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Number of tuples `T`.
    pub tuples: usize,
    /// Number of selection dimensions `S`.
    pub selection_dims: usize,
    /// Cardinality `C` of every selection dimension.
    pub cardinality: u32,
    /// Number of ranking dimensions `R`.
    pub ranking_dims: usize,
    /// Ranking-value distribution.
    pub dist: DataDist,
    /// RNG seed (experiments are reproducible).
    pub seed: u64,
}

impl Default for SyntheticSpec {
    /// Table 3.8 defaults scaled to laptop size: `S=3, R=2, C=20`,
    /// uniform distribution. `T` defaults to 30 000 (the paper's 3M divided
    /// by the global ×100 scale factor noted in EXPERIMENTS.md).
    fn default() -> Self {
        Self {
            tuples: 30_000,
            selection_dims: 3,
            cardinality: 20,
            ranking_dims: 2,
            dist: DataDist::Uniform,
            seed: 42,
        }
    }
}

impl SyntheticSpec {
    /// Generates the relation.
    pub fn generate(&self) -> Relation {
        let schema = Schema::synthetic(self.selection_dims, self.cardinality, self.ranking_dims);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = RelationBuilder::with_capacity(schema, self.tuples);
        let mut sel = vec![0u32; self.selection_dims];
        for _ in 0..self.tuples {
            for v in sel.iter_mut() {
                *v = rng.gen_range(0..self.cardinality);
            }
            let rank = sample_point(&mut rng, self.ranking_dims, self.dist);
            b.push(&sel, &rank);
        }
        b.finish()
    }
}

/// Samples one ranking point in `[0,1]^d` under `dist`.
pub fn sample_point(rng: &mut impl Rng, dims: usize, dist: DataDist) -> Vec<f64> {
    match dist {
        DataDist::Uniform => (0..dims).map(|_| rng.gen::<f64>()).collect(),
        DataDist::Correlated => {
            // Common base value plus small Gaussian jitter per dimension.
            let base: f64 = rng.gen();
            (0..dims).map(|_| (base + 0.12 * gaussian(rng)).clamp(0.0, 1.0)).collect()
        }
        DataDist::AntiCorrelated => {
            // Points near the hyper-plane Σxi = d/2 with large spread along
            // it (the standard Börzsönyi-style construction).
            loop {
                let plane = 0.5 * dims as f64 + 0.06 * gaussian(rng);
                let mut raw: Vec<f64> = (0..dims).map(|_| rng.gen::<f64>()).collect();
                let sum: f64 = raw.iter().sum();
                if sum <= f64::EPSILON {
                    continue;
                }
                let scale = plane / sum;
                for v in raw.iter_mut() {
                    *v *= scale;
                }
                if raw.iter().all(|&v| (0.0..=1.0).contains(&v)) {
                    return raw;
                }
            }
        }
    }
}

/// Standard normal via Box–Muller (keeps the dependency set minimal).
fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Cardinalities of the 12 CoverType attributes used as selection
/// dimensions in Sections 3.5.1/4.4.1.
pub const FOREST_SELECTION_CARDS: [u32; 12] = [255, 207, 185, 67, 7, 2, 2, 2, 2, 2, 2, 2];

/// Cardinalities of the 3 quantitative attributes used as ranking
/// dimensions (distinct-value counts reported in the thesis).
pub const FOREST_RANKING_CARDS: [u32; 3] = [1_989, 5_787, 5_827];

/// Generates the Forest CoverType surrogate with `tuples` rows.
///
/// Selection values follow a truncated-geometric (skewed) distribution —
/// real CoverType attributes are heavily skewed toward a few frequent soil
/// and area codes. Ranking values are drawn on a lattice of the published
/// distinct-value counts with a mild central tendency.
pub fn forest_cover(tuples: usize, seed: u64) -> Relation {
    let schema = Schema::new(
        FOREST_SELECTION_CARDS
            .iter()
            .enumerate()
            .map(|(i, &c)| Dim::cat(format!("F{}", i + 1), c))
            .collect(),
        vec!["elevation", "h_dist_road", "h_dist_fire"],
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = RelationBuilder::with_capacity(schema, tuples);
    let mut sel = vec![0u32; FOREST_SELECTION_CARDS.len()];
    for _ in 0..tuples {
        for (d, v) in sel.iter_mut().enumerate() {
            *v = skewed_value(&mut rng, FOREST_SELECTION_CARDS[d]);
        }
        let rank: Vec<f64> = FOREST_RANKING_CARDS
            .iter()
            .map(|&card| {
                // Average two uniforms for a gentle central mode, then snap
                // to the attribute's value lattice.
                let v = 0.5 * (rng.gen::<f64>() + rng.gen::<f64>());
                (v * (card - 1) as f64).round() / (card - 1) as f64
            })
            .collect();
        b.push(&sel, &rank);
    }
    b.finish()
}

/// Truncated-geometric sample over `0..card` (p = 0.25 per step, cycling).
fn skewed_value(rng: &mut impl Rng, card: u32) -> u32 {
    if card <= 2 {
        // Binary attributes in CoverType are ~85/15 splits.
        return u32::from(rng.gen::<f64>() < 0.15);
    }
    let mut v = 0u32;
    while rng.gen::<f64>() < 0.75 {
        v += 1;
    }
    v % card
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_defaults_generate_correct_shape() {
        let spec = SyntheticSpec { tuples: 500, ..Default::default() };
        let r = spec.generate();
        assert_eq!(r.len(), 500);
        assert_eq!(r.schema().num_selection(), 3);
        assert_eq!(r.schema().num_ranking(), 2);
        for tid in r.tids() {
            for d in 0..3 {
                assert!(r.selection_value(tid, d) < 20);
            }
            for d in 0..2 {
                let v = r.ranking_value(tid, d);
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = SyntheticSpec { tuples: 200, ..Default::default() };
        let a = spec.generate();
        let b = spec.generate();
        for tid in a.tids() {
            assert_eq!(a.ranking_point(tid), b.ranking_point(tid));
        }
        let c = SyntheticSpec { seed: 7, ..spec }.generate();
        let differs = a.tids().any(|t| a.ranking_point(t) != c.ranking_point(t));
        assert!(differs);
    }

    #[test]
    fn correlated_points_cluster_on_diagonal() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut max_spread: f64 = 0.0;
        let mut avg_spread = 0.0;
        for _ in 0..500 {
            let p = sample_point(&mut rng, 2, DataDist::Correlated);
            let spread = (p[0] - p[1]).abs();
            max_spread = max_spread.max(spread);
            avg_spread += spread;
        }
        avg_spread /= 500.0;
        assert!(avg_spread < 0.2, "correlated spread too large: {avg_spread}");
    }

    #[test]
    fn anticorrelated_points_hug_the_antidiagonal() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let p = sample_point(&mut rng, 2, DataDist::AntiCorrelated);
            let sum = p[0] + p[1];
            assert!((sum - 1.0).abs() < 0.45, "sum {sum} too far from plane");
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn forest_surrogate_respects_domains() {
        let r = forest_cover(1_000, 3);
        assert_eq!(r.schema().num_selection(), 12);
        assert_eq!(r.schema().num_ranking(), 3);
        for tid in r.tids() {
            for (d, &card) in FOREST_SELECTION_CARDS.iter().enumerate() {
                assert!(r.selection_value(tid, d) < card);
            }
        }
        // Binary dims are skewed (mostly zero).
        let ones = r.tids().filter(|&t| r.selection_value(t, 5) == 1).count();
        assert!(ones < 300, "binary attribute should be skewed, got {ones}/1000 ones");
    }

    #[test]
    fn gaussian_has_roughly_zero_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| gaussian(&mut rng)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }
}
