//! Relations, schemas and data/workload generators.
//!
//! The thesis' data model (Section 1.2.1): a relation `R` with categorical
//! *selection dimensions* `A1..AS` (a.k.a. Boolean dimensions) and real-valued
//! *ranking dimensions* `N1..NR` over `[0, 1]`. Tuples are addressed by
//! `tid`. Queries select on a subset of the `Ai` and rank by an ad-hoc
//! function over a subset of the `Ni`.
//!
//! The [`gen`] module reproduces the synthetic data sets of Tables 3.8/4.4
//! (uniform / correlated / anti-correlated distributions, parameterised by
//! `T`, `C`, `S`, `R`) and a statistical surrogate of the UCI Forest
//! CoverType set used as "real data" (see DESIGN.md §1.1 for the
//! substitution rationale). The [`workload`] module generates the random
//! query batches of Table 3.9.

pub mod gen;
pub mod relation;
pub mod schema;
pub mod selection;
pub mod workload;

pub use relation::{Relation, RelationBuilder, Tid};
pub use schema::{Dim, Schema};
pub use selection::Selection;
pub use workload::{
    MixedWorkloadGen, MixedWorkloadParams, QueryGen, QuerySpec, WorkloadOp, WorkloadParams,
};
