//! Columnar relations.
//!
//! Storage is column-oriented: one `Vec<u32>` per selection dimension and
//! one `Vec<f64>` per ranking dimension. Tuple identity is the row index
//! (`tid`), matching the thesis' tid-list measures.

use crate::schema::Schema;

/// Tuple identifier (row index).
pub type Tid = u32;

/// An immutable columnar relation.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    selection_cols: Vec<Vec<u32>>,
    ranking_cols: Vec<Vec<f64>>,
    rows: usize,
}

impl Relation {
    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples (`T`).
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Value of selection dimension `dim` for tuple `tid`.
    #[inline]
    pub fn selection_value(&self, tid: Tid, dim: usize) -> u32 {
        self.selection_cols[dim][tid as usize]
    }

    /// Value of ranking dimension `dim` for tuple `tid`.
    #[inline]
    pub fn ranking_value(&self, tid: Tid, dim: usize) -> f64 {
        self.ranking_cols[dim][tid as usize]
    }

    /// All ranking-dimension values of `tid`, in schema order.
    pub fn ranking_point(&self, tid: Tid) -> Vec<f64> {
        (0..self.schema.num_ranking()).map(|d| self.ranking_value(tid, d)).collect()
    }

    /// Ranking values of `tid` projected onto `dims`.
    pub fn ranking_point_proj(&self, tid: Tid, dims: &[usize]) -> Vec<f64> {
        dims.iter().map(|&d| self.ranking_value(tid, d)).collect()
    }

    /// Entire column of a ranking dimension (used for index bulk-loads).
    pub fn ranking_column(&self, dim: usize) -> &[f64] {
        &self.ranking_cols[dim]
    }

    /// Entire column of a selection dimension.
    pub fn selection_column(&self, dim: usize) -> &[u32] {
        &self.selection_cols[dim]
    }

    /// Iterates over all tids.
    pub fn tids(&self) -> impl Iterator<Item = Tid> + '_ {
        0..self.rows as Tid
    }

    /// Rough in-memory footprint in bytes (space-usage experiments).
    pub fn byte_size(&self) -> usize {
        self.selection_cols.len() * self.rows * std::mem::size_of::<u32>()
            + self.ranking_cols.len() * self.rows * std::mem::size_of::<f64>()
    }

    /// Returns a new relation with the first `n` rows (prefix scaling for
    /// the `T` sweeps).
    pub fn prefix(&self, n: usize) -> Relation {
        let n = n.min(self.rows);
        Relation {
            schema: self.schema.clone(),
            selection_cols: self.selection_cols.iter().map(|c| c[..n].to_vec()).collect(),
            ranking_cols: self.ranking_cols.iter().map(|c| c[..n].to_vec()).collect(),
            rows: n,
        }
    }

    /// Returns the sub-relation holding rows `lo..hi` (tid-range
    /// partitioning for sharded builds). Row `lo + i` of `self` becomes
    /// local tid `i`; callers that need global tids add `lo` back.
    pub fn range(&self, lo: usize, hi: usize) -> Relation {
        let hi = hi.min(self.rows);
        let lo = lo.min(hi);
        Relation {
            schema: self.schema.clone(),
            selection_cols: self.selection_cols.iter().map(|c| c[lo..hi].to_vec()).collect(),
            ranking_cols: self.ranking_cols.iter().map(|c| c[lo..hi].to_vec()).collect(),
            rows: hi - lo,
        }
    }
}

/// Row-at-a-time builder for [`Relation`].
#[derive(Debug)]
pub struct RelationBuilder {
    schema: Schema,
    selection_cols: Vec<Vec<u32>>,
    ranking_cols: Vec<Vec<f64>>,
    rows: usize,
}

impl RelationBuilder {
    pub fn new(schema: Schema) -> Self {
        let s = schema.num_selection();
        let r = schema.num_ranking();
        Self {
            schema,
            selection_cols: vec![Vec::new(); s],
            ranking_cols: vec![Vec::new(); r],
            rows: 0,
        }
    }

    /// Pre-allocates column capacity for `n` rows.
    pub fn with_capacity(schema: Schema, n: usize) -> Self {
        let mut b = Self::new(schema);
        for c in &mut b.selection_cols {
            c.reserve(n);
        }
        for c in &mut b.ranking_cols {
            c.reserve(n);
        }
        b
    }

    /// Appends one tuple; returns its tid. Panics when arities mismatch the
    /// schema or a categorical value exceeds its cardinality.
    pub fn push(&mut self, selection: &[u32], ranking: &[f64]) -> Tid {
        assert_eq!(selection.len(), self.schema.num_selection(), "selection arity mismatch");
        assert_eq!(ranking.len(), self.schema.num_ranking(), "ranking arity mismatch");
        for (d, &v) in selection.iter().enumerate() {
            assert!(
                v < self.schema.selection_dim(d).cardinality(),
                "value {v} out of domain for dimension {}",
                self.schema.selection_dim(d).name()
            );
            self.selection_cols[d].push(v);
        }
        for (d, &v) in ranking.iter().enumerate() {
            self.ranking_cols[d].push(v);
        }
        let tid = self.rows as Tid;
        self.rows += 1;
        tid
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when no rows were pushed.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Finalizes the relation.
    pub fn finish(self) -> Relation {
        Relation {
            schema: self.schema,
            selection_cols: self.selection_cols,
            ranking_cols: self.ranking_cols,
            rows: self.rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Dim, Schema};

    fn sample() -> Relation {
        // Table 3.1 of the thesis.
        let schema = Schema::new(vec![Dim::cat("A1", 2), Dim::cat("A2", 2)], vec!["N1", "N2"]);
        let mut b = RelationBuilder::new(schema);
        b.push(&[0, 0], &[0.05, 0.05]);
        b.push(&[0, 1], &[0.65, 0.70]);
        b.push(&[0, 0], &[0.05, 0.25]);
        b.push(&[0, 0], &[0.35, 0.15]);
        b.finish()
    }

    #[test]
    fn columnar_round_trip() {
        let r = sample();
        assert_eq!(r.len(), 4);
        assert_eq!(r.selection_value(1, 1), 1);
        assert_eq!(r.ranking_value(3, 0), 0.35);
        assert_eq!(r.ranking_point(2), vec![0.05, 0.25]);
    }

    #[test]
    fn projection_selects_dims() {
        let r = sample();
        assert_eq!(r.ranking_point_proj(1, &[1]), vec![0.70]);
        assert_eq!(r.ranking_point_proj(1, &[1, 0]), vec![0.70, 0.65]);
    }

    #[test]
    fn prefix_truncates() {
        let r = sample();
        let p = r.prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.ranking_value(1, 1), 0.70);
        assert_eq!(r.prefix(100).len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn domain_violation_panics() {
        let schema = Schema::new(vec![Dim::cat("A", 2)], vec!["N"]);
        let mut b = RelationBuilder::new(schema);
        b.push(&[2], &[0.0]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_violation_panics() {
        let schema = Schema::new(vec![Dim::cat("A", 2)], vec!["N"]);
        let mut b = RelationBuilder::new(schema);
        b.push(&[0, 1], &[0.0]);
    }

    #[test]
    fn byte_size_counts_columns() {
        let r = sample();
        assert_eq!(r.byte_size(), 2 * 4 * 4 + 2 * 4 * 8);
    }
}
