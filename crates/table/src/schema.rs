//! Relation schemas: selection dimensions and ranking dimensions.

/// A categorical selection (Boolean) dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dim {
    name: String,
    cardinality: u32,
}

impl Dim {
    /// A categorical dimension with values `0..cardinality`.
    pub fn cat(name: impl Into<String>, cardinality: u32) -> Self {
        assert!(cardinality > 0, "dimension cardinality must be positive");
        Self { name: name.into(), cardinality }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of distinct values (`C` in the thesis' parameter tables).
    pub fn cardinality(&self) -> u32 {
        self.cardinality
    }
}

/// Schema of a relation: `S` selection dimensions + `R` ranking dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    selection: Vec<Dim>,
    ranking: Vec<String>,
}

impl Schema {
    pub fn new(selection: Vec<Dim>, ranking: Vec<impl Into<String>>) -> Self {
        Self { selection, ranking: ranking.into_iter().map(Into::into).collect() }
    }

    /// Convenience constructor: `s` selection dimensions of equal
    /// cardinality `c`, `r` ranking dimensions (the synthetic-data shape).
    pub fn synthetic(s: usize, c: u32, r: usize) -> Self {
        Self {
            selection: (0..s).map(|i| Dim::cat(format!("A{}", i + 1), c)).collect(),
            ranking: (0..r).map(|i| format!("N{}", i + 1)).collect(),
        }
    }

    /// Number of selection dimensions (`S`).
    pub fn num_selection(&self) -> usize {
        self.selection.len()
    }

    /// Number of ranking dimensions (`R`).
    pub fn num_ranking(&self) -> usize {
        self.ranking.len()
    }

    /// Selection dimension metadata.
    pub fn selection_dim(&self, i: usize) -> &Dim {
        &self.selection[i]
    }

    /// All selection dimensions.
    pub fn selection_dims(&self) -> &[Dim] {
        &self.selection
    }

    /// Name of ranking dimension `i`.
    pub fn ranking_dim(&self, i: usize) -> &str {
        &self.ranking[i]
    }

    /// Resolves a selection dimension by name.
    pub fn selection_index(&self, name: &str) -> Option<usize> {
        self.selection.iter().position(|d| d.name() == name)
    }

    /// Resolves a ranking dimension by name.
    pub fn ranking_index(&self, name: &str) -> Option<usize> {
        self.ranking.iter().position(|d| d == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_schema_shape() {
        let s = Schema::synthetic(3, 20, 2);
        assert_eq!(s.num_selection(), 3);
        assert_eq!(s.num_ranking(), 2);
        assert_eq!(s.selection_dim(0).name(), "A1");
        assert_eq!(s.selection_dim(2).cardinality(), 20);
        assert_eq!(s.ranking_dim(1), "N2");
    }

    #[test]
    fn name_resolution() {
        let s =
            Schema::new(vec![Dim::cat("type", 3), Dim::cat("color", 5)], vec!["price", "mileage"]);
        assert_eq!(s.selection_index("color"), Some(1));
        assert_eq!(s.selection_index("price"), None);
        assert_eq!(s.ranking_index("price"), Some(0));
        assert_eq!(s.ranking_index("type"), None);
    }

    #[test]
    #[should_panic(expected = "cardinality must be positive")]
    fn zero_cardinality_rejected() {
        let _ = Dim::cat("bad", 0);
    }
}
