//! Multi-dimensional Boolean selections.
//!
//! A query's `WHERE A'1 = a1 AND … AND A'i = ai` clause. Conditions are kept
//! sorted by dimension so a selection doubles as a canonical cuboid-cell key.

use crate::relation::{Relation, Tid};

/// A conjunction of equality predicates on selection dimensions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Selection {
    /// `(dimension index, value)` pairs, sorted by dimension, no duplicates.
    conds: Vec<(usize, u32)>,
}

impl Selection {
    /// Builds a selection from `(dim, value)` pairs. Panics on duplicate
    /// dimensions (a malformed query, caught at construction).
    pub fn new(mut conds: Vec<(usize, u32)>) -> Self {
        conds.sort_unstable_by_key(|&(d, _)| d);
        for w in conds.windows(2) {
            assert_ne!(w[0].0, w[1].0, "duplicate selection dimension {}", w[0].0);
        }
        Self { conds }
    }

    /// The empty selection (matches every tuple).
    pub fn all() -> Self {
        Self { conds: Vec::new() }
    }

    /// The predicates, sorted by dimension.
    pub fn conds(&self) -> &[(usize, u32)] {
        &self.conds
    }

    /// Number of predicates (`s` in Table 3.9).
    pub fn len(&self) -> usize {
        self.conds.len()
    }

    /// True when there are no predicates.
    pub fn is_empty(&self) -> bool {
        self.conds.is_empty()
    }

    /// Dimensions referenced by the selection.
    pub fn dims(&self) -> Vec<usize> {
        self.conds.iter().map(|&(d, _)| d).collect()
    }

    /// Value demanded on `dim`, if constrained.
    pub fn value_on(&self, dim: usize) -> Option<u32> {
        self.conds.binary_search_by_key(&dim, |&(d, _)| d).ok().map(|i| self.conds[i].1)
    }

    /// True when tuple `tid` of `rel` satisfies every predicate.
    pub fn matches(&self, rel: &Relation, tid: Tid) -> bool {
        self.conds.iter().all(|&(d, v)| rel.selection_value(tid, d) == v)
    }

    /// Restricts the selection to the given dimensions (projection onto a
    /// fragment's dimension set).
    pub fn project(&self, dims: &[usize]) -> Selection {
        Selection { conds: self.conds.iter().copied().filter(|(d, _)| dims.contains(d)).collect() }
    }

    /// Drops the predicate on `dim` (the roll-up operation of Chapter 7).
    pub fn roll_up(&self, dim: usize) -> Selection {
        Selection { conds: self.conds.iter().copied().filter(|&(d, _)| d != dim).collect() }
    }

    /// Adds a predicate on a previously unconstrained `dim` (drill-down).
    pub fn drill_down(&self, dim: usize, value: u32) -> Selection {
        let mut conds = self.conds.clone();
        conds.push((dim, value));
        Selection::new(conds)
    }

    /// Estimated selectivity under independent uniform dimensions — the
    /// optimizer's cardinality model (Chapter 6).
    pub fn estimated_selectivity(&self, rel: &Relation) -> f64 {
        self.conds
            .iter()
            .map(|&(d, _)| 1.0 / rel.schema().selection_dim(d).cardinality() as f64)
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::schema::{Dim, Schema};

    fn rel() -> Relation {
        let schema =
            Schema::new(vec![Dim::cat("A1", 2), Dim::cat("A2", 4), Dim::cat("A3", 4)], vec!["N1"]);
        let mut b = RelationBuilder::new(schema);
        b.push(&[0, 1, 2], &[0.1]);
        b.push(&[1, 1, 3], &[0.2]);
        b.push(&[0, 2, 2], &[0.3]);
        b.finish()
    }

    #[test]
    fn matches_conjunction() {
        let r = rel();
        let sel = Selection::new(vec![(1, 1), (0, 0)]);
        assert!(sel.matches(&r, 0));
        assert!(!sel.matches(&r, 1)); // A1 differs
        assert!(!sel.matches(&r, 2)); // A2 differs
    }

    #[test]
    fn empty_selection_matches_all() {
        let r = rel();
        let sel = Selection::all();
        assert!(r.tids().all(|t| sel.matches(&r, t)));
    }

    #[test]
    fn conds_sorted_and_value_lookup() {
        let sel = Selection::new(vec![(2, 9), (0, 1)]);
        assert_eq!(sel.conds(), &[(0, 1), (2, 9)]);
        assert_eq!(sel.value_on(2), Some(9));
        assert_eq!(sel.value_on(1), None);
    }

    #[test]
    fn project_and_rollup_and_drilldown() {
        let sel = Selection::new(vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(sel.project(&[1]).conds(), &[(1, 2)]);
        assert_eq!(sel.roll_up(1).conds(), &[(0, 1), (2, 3)]);
        let dd = sel.roll_up(1).drill_down(1, 2);
        assert_eq!(dd, sel);
    }

    #[test]
    #[should_panic(expected = "duplicate selection dimension")]
    fn duplicate_dims_rejected() {
        let _ = Selection::new(vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn selectivity_product_of_cardinalities() {
        let r = rel();
        let sel = Selection::new(vec![(0, 0), (1, 1)]);
        assert!((sel.estimated_selectivity(&r) - (1.0 / 2.0) * (1.0 / 4.0)).abs() < 1e-12);
    }
}
