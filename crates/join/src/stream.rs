//! Rank-aware selection (Section 6.3.1): a per-relation operator producing
//! qualifying tuples one at a time in ascending partial-score order.
//!
//! Internally a branch-and-bound descent over the relation's R-tree with
//! signature Boolean pruning — the streaming form of Algorithm 3. The
//! optimizer may instead materialize the qualifying tuples upfront
//! (Boolean-first access) and stream from the sorted buffer; both
//! implement [`TupleStream`].

use std::collections::BinaryHeap;

use rcube_core::sigcube::Pruner;
use rcube_func::{Linear, RankFn};
use rcube_index::{HierIndex, NodeHandle};
use rcube_storage::DiskSim;
use rcube_table::{Selection, Tid};

use crate::relation::JoinRelation;

/// A stream of `(tid, partial score)` in ascending score order.
pub trait TupleStream {
    /// The next qualifying tuple, charging I/O as needed.
    fn next(&mut self, disk: &DiskSim) -> Option<(Tid, f64)>;

    /// Lower bound for every not-yet-returned tuple (the `first/last`
    /// bookkeeping of the rank-join threshold).
    fn bound(&self) -> f64;

    /// Blocks read so far.
    fn blocks_read(&self) -> u64;
}

#[derive(Debug)]
enum Entry {
    Node(NodeHandle, Vec<u16>),
    Tuple(Tid, Vec<u16>, f64),
}

#[derive(Debug)]
struct Item {
    key: f64,
    seq: u64,
    entry: Entry,
}

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for Item {}
impl Ord for Item {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key.total_cmp(&self.key).then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Progressive rank-aware selection over a [`JoinRelation`].
pub struct RankedStream<'a> {
    relation: &'a JoinRelation,
    pruner: Option<Pruner<'a>>,
    func: Linear,
    heap: BinaryHeap<Item>,
    seq: u64,
    last: f64,
    exhausted: bool,
    blocks: u64,
    /// Keys that can possibly join (list pruning); `None` disables.
    key_filter: Option<std::collections::HashSet<u32>>,
}

impl<'a> std::fmt::Debug for RankedStream<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankedStream")
            .field("last", &self.last)
            .field("exhausted", &self.exhausted)
            .finish()
    }
}

impl<'a> RankedStream<'a> {
    /// Opens a stream; returns `None`-producing stream when a predicate's
    /// cell is empty. Signature probes charge `disk` (captured by the
    /// pruner at construction, so probes don't thread a device), keeping
    /// pruning I/O inside the executor's query stats.
    pub fn open(
        relation: &'a JoinRelation,
        selection: &Selection,
        weights: Vec<f64>,
        key_filter: Option<std::collections::HashSet<u32>>,
        disk: &'a DiskSim,
    ) -> Self {
        let pruner = relation.cube().pruner_for(selection, disk);
        let empty_cell = pruner.is_none();
        let func = Linear::new(weights);
        let mut heap = BinaryHeap::new();
        if !empty_cell {
            let root = relation.rtree().root();
            let bound = func.lower_bound(&relation.rtree().region(root));
            heap.push(Item { key: bound, seq: 0, entry: Entry::Node(root, Vec::new()) });
        }
        Self {
            relation,
            pruner,
            func,
            heap,
            seq: 0,
            last: f64::NEG_INFINITY,
            exhausted: empty_cell,
            blocks: 0,
            key_filter,
        }
    }
}

impl<'a> TupleStream for RankedStream<'a> {
    fn next(&mut self, disk: &DiskSim) -> Option<(Tid, f64)> {
        while let Some(Item { entry, .. }) = self.heap.pop() {
            let path = match &entry {
                Entry::Node(_, p) => p,
                Entry::Tuple(_, p, _) => p,
            };
            if !path.is_empty() && !self.pruner.as_mut().is_none_or(|p| p.check_path(path)) {
                continue;
            }
            match entry {
                Entry::Tuple(tid, _, score) => {
                    if let Some(filter) = &self.key_filter {
                        if !filter.contains(&self.relation.key_of(tid)) {
                            continue; // list pruning: key cannot join
                        }
                    }
                    self.last = score;
                    return Some((tid, score));
                }
                Entry::Node(n, path) => {
                    let rtree = self.relation.rtree();
                    rtree.read_node(disk, n);
                    self.blocks += 1;
                    if rtree.is_leaf(n) {
                        for (slot, (tid, point)) in rtree.leaf_entries(n).into_iter().enumerate() {
                            let score = self.func.score(&point);
                            let mut tpath = path.clone();
                            tpath.push(slot as u16);
                            self.seq += 1;
                            self.heap.push(Item {
                                key: score,
                                seq: self.seq,
                                entry: Entry::Tuple(tid, tpath, score),
                            });
                        }
                    } else {
                        for (pos, child) in rtree.children(n).into_iter().enumerate() {
                            let bound = self.func.lower_bound(&rtree.region(child));
                            let mut cpath = path.clone();
                            cpath.push(pos as u16);
                            self.seq += 1;
                            self.heap.push(Item {
                                key: bound,
                                seq: self.seq,
                                entry: Entry::Node(child, cpath),
                            });
                        }
                    }
                }
            }
        }
        self.exhausted = true;
        None
    }

    fn bound(&self) -> f64 {
        if self.exhausted {
            f64::INFINITY
        } else {
            self.heap.peek().map_or(f64::INFINITY, |i| i.key).max(self.last)
        }
    }

    fn blocks_read(&self) -> u64 {
        self.blocks
    }
}

/// Boolean-first access: qualifying tuples materialized and sorted upfront
/// (chosen by the optimizer for very selective predicates).
#[derive(Debug)]
pub struct MaterializedStream {
    items: Vec<(Tid, f64)>,
    pos: usize,
    blocks: u64,
}

impl MaterializedStream {
    pub fn open(
        relation: &JoinRelation,
        selection: &Selection,
        weights: Vec<f64>,
        disk: &DiskSim,
        key_filter: Option<&std::collections::HashSet<u32>>,
    ) -> Self {
        let rel = relation.relation();
        let func = Linear::new(weights);
        let mut items: Vec<(Tid, f64)> = rel
            .tids()
            .filter(|&t| selection.matches(rel, t))
            .filter(|&t| key_filter.is_none_or(|f| f.contains(&relation.key_of(t))))
            .map(|t| {
                disk.random_access();
                (t, func.score(&rel.ranking_point(t)))
            })
            .collect();
        items.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        Self { items, pos: 0, blocks: 0 }
    }
}

impl TupleStream for MaterializedStream {
    fn next(&mut self, _disk: &DiskSim) -> Option<(Tid, f64)> {
        let item = self.items.get(self.pos).copied();
        self.pos += 1;
        item
    }

    fn bound(&self) -> f64 {
        self.items.get(self.pos).map_or(f64::INFINITY, |&(_, s)| s)
    }

    fn blocks_read(&self) -> u64 {
        self.blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcube_table::gen::SyntheticSpec;

    fn setup() -> (DiskSim, JoinRelation) {
        let rel = SyntheticSpec { tuples: 800, cardinality: 4, ..Default::default() }.generate();
        let keys: Vec<u32> = (0..800).map(|i| i * 7 % 40).collect();
        let disk = DiskSim::with_defaults();
        (DiskSim::with_defaults(), JoinRelation::build(rel, keys, &disk))
    }

    #[test]
    fn stream_yields_ascending_qualifying_tuples() {
        let (disk, jr) = setup();
        let sel = Selection::new(vec![(0, 1)]);
        let mut s = RankedStream::open(&jr, &sel, vec![1.0, 1.0], None, &disk);
        let mut prev = f64::NEG_INFINITY;
        let mut count = 0;
        while let Some((tid, score)) = s.next(&disk) {
            assert!(score >= prev - 1e-12, "stream must be sorted");
            assert!(sel.matches(jr.relation(), tid));
            prev = score;
            count += 1;
        }
        let expect = jr.relation().tids().filter(|&t| sel.matches(jr.relation(), t)).count();
        assert_eq!(count, expect);
    }

    #[test]
    fn key_filter_prunes_streams() {
        let (disk, jr) = setup();
        let sel = Selection::all();
        let filter: std::collections::HashSet<u32> = [0u32, 7, 14].into_iter().collect();
        let mut s = RankedStream::open(&jr, &sel, vec![1.0, 1.0], Some(filter.clone()), &disk);
        while let Some((tid, _)) = s.next(&disk) {
            assert!(filter.contains(&jr.key_of(tid)));
        }
    }

    #[test]
    fn materialized_stream_equals_ranked_stream() {
        let (disk, jr) = setup();
        let sel = Selection::new(vec![(1, 2)]);
        let mut a = RankedStream::open(&jr, &sel, vec![2.0, 0.5], None, &disk);
        let mut b = MaterializedStream::open(&jr, &sel, vec![2.0, 0.5], &disk, None);
        loop {
            let (x, y) = (a.next(&disk), b.next(&disk));
            match (x, y) {
                (None, None) => break,
                (Some((_, sa)), Some((_, sb))) => assert!((sa - sb).abs() < 1e-12),
                other => panic!("stream length mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn bound_tracks_progress() {
        let (disk, jr) = setup();
        let mut s = RankedStream::open(&jr, &Selection::all(), vec![1.0, 1.0], None, &disk);
        let b0 = s.bound();
        let (_, s1) = s.next(&disk).unwrap();
        assert!(s.bound() >= b0 - 1e-12);
        assert!(s.bound() >= s1 - 1e-12);
    }
}
