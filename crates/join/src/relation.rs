//! A relation prepared for SPJR processing: base data, join-key column,
//! R-tree partition, signature cuboids and the join-key set used for list
//! pruning.

use std::collections::HashSet;

use rcube_core::sigcube::{SignatureCube, SignatureCubeConfig};
use rcube_index::rtree::{RTree, RTreeConfig};
use rcube_storage::DiskSim;
use rcube_table::{Relation, Tid};

/// A join-ready relation with its ranking-cube materialization.
#[derive(Debug)]
pub struct JoinRelation {
    rel: Relation,
    join_key: Vec<u32>,
    rtree: RTree,
    cube: SignatureCube,
    key_set: HashSet<u32>,
}

impl JoinRelation {
    /// Builds the per-relation ranking cube (Section 6.1.3). `join_key[t]`
    /// is tuple `t`'s join-key value.
    pub fn build(rel: Relation, join_key: Vec<u32>, disk: &DiskSim) -> Self {
        assert_eq!(rel.len(), join_key.len(), "join key column length mismatch");
        let fanout = RTreeConfig::for_page(disk.page_size(), rel.schema().num_ranking());
        // Laptop-scale fanout keeps trees deep enough to exercise search.
        let config = RTreeConfig {
            max_entries: fanout.max_entries.min(32),
            min_entries: fanout.min_entries.min(12),
            bulk_fill: fanout.bulk_fill,
        };
        let rtree = RTree::over_relation(disk, &rel, &[], config);
        let cube = SignatureCube::build(&rel, &rtree, disk, SignatureCubeConfig::default());
        let key_set = join_key.iter().copied().collect();
        Self { rel, join_key, rtree, cube, key_set }
    }

    /// The base relation.
    pub fn relation(&self) -> &Relation {
        &self.rel
    }

    /// Join-key value of a tuple.
    pub fn key_of(&self, tid: Tid) -> u32 {
        self.join_key[tid as usize]
    }

    /// The set of join keys present (list pruning, Section 6.3.3).
    pub fn key_set(&self) -> &HashSet<u32> {
        &self.key_set
    }

    /// The R-tree partition.
    pub fn rtree(&self) -> &RTree {
        &self.rtree
    }

    /// The signature cuboids.
    pub fn cube(&self) -> &SignatureCube {
        &self.cube
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcube_table::gen::SyntheticSpec;

    #[test]
    fn build_wires_all_components() {
        let rel = SyntheticSpec { tuples: 300, ..Default::default() }.generate();
        let keys: Vec<u32> = (0..300).map(|i| i % 10).collect();
        let disk = DiskSim::with_defaults();
        let jr = JoinRelation::build(rel, keys, &disk);
        assert_eq!(jr.key_of(13), 3);
        assert_eq!(jr.key_set().len(), 10);
        assert!(jr.cube().materialized_bytes() > 0);
        assert_eq!(jr.relation().len(), 300);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn key_column_must_match() {
        let rel = SyntheticSpec { tuples: 10, ..Default::default() }.generate();
        let disk = DiskSim::with_defaults();
        let _ = JoinRelation::build(rel, vec![1, 2], &disk);
    }
}
