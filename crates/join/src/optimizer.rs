//! The SPJR query optimizer (Section 6.2).
//!
//! Per relation it chooses between **rank-aware selection** (progressive,
//! good when many tuples qualify and only a few top answers are needed)
//! and **Boolean-first materialization** (good when the predicates are very
//! selective, Section 6.2.1); across relations it orders the pulls by
//! estimated qualifying cardinality (Section 6.2.2) so the most selective
//! stream drives the join threshold down fastest.

use crate::relation::JoinRelation;
use crate::SpjrQuery;

/// Access method per relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Progressive cube-driven stream.
    RankAware,
    /// Materialize qualifying tuples, sort, stream.
    BooleanFirst,
}

/// An execution plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Access method per relation (aligned with the query's relations).
    pub access: Vec<Access>,
    /// Pull order (relation indices, most selective first).
    pub pull_order: Vec<usize>,
    /// Estimated qualifying tuples per relation.
    pub estimates: Vec<f64>,
}

/// Materialization pays off below this many estimated matches.
const MATERIALIZE_THRESHOLD: f64 = 48.0;

/// Produces a plan from uniform-independence selectivity estimates.
pub fn optimize(relations: &[&JoinRelation], query: &SpjrQuery) -> Plan {
    assert_eq!(relations.len(), query.relations.len(), "plan arity mismatch");
    let estimates: Vec<f64> = relations
        .iter()
        .zip(&query.relations)
        .map(|(jr, rq)| {
            rq.selection.estimated_selectivity(jr.relation()) * jr.relation().len() as f64
        })
        .collect();
    let access = estimates
        .iter()
        .map(|&e| if e < MATERIALIZE_THRESHOLD { Access::BooleanFirst } else { Access::RankAware })
        .collect();
    let mut pull_order: Vec<usize> = (0..relations.len()).collect();
    pull_order.sort_by(|&a, &b| estimates[a].total_cmp(&estimates[b]));
    Plan { access, pull_order, estimates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RelQuery;
    use rcube_storage::DiskSim;
    use rcube_table::gen::SyntheticSpec;
    use rcube_table::Selection;

    fn setup(card: u32) -> JoinRelation {
        let rel =
            SyntheticSpec { tuples: 1_000, cardinality: card, ..Default::default() }.generate();
        let keys: Vec<u32> = (0..1_000).map(|i| i % 20).collect();
        let disk = DiskSim::with_defaults();
        JoinRelation::build(rel, keys, &disk)
    }

    #[test]
    fn selective_predicates_get_materialized() {
        let jr = setup(100);
        let q = SpjrQuery {
            relations: vec![RelQuery {
                // 1000 / (100·100) = 0.1 expected matches.
                selection: Selection::new(vec![(0, 1), (1, 2)]),
                weights: vec![1.0, 1.0],
            }],
            k: 5,
        };
        let plan = optimize(&[&jr], &q);
        assert_eq!(plan.access[0], Access::BooleanFirst);
    }

    #[test]
    fn loose_predicates_stay_rank_aware() {
        let jr = setup(2);
        let q = SpjrQuery {
            relations: vec![RelQuery {
                selection: Selection::new(vec![(0, 1)]),
                weights: vec![1.0, 1.0],
            }],
            k: 5,
        };
        let plan = optimize(&[&jr], &q);
        assert_eq!(plan.access[0], Access::RankAware);
    }

    #[test]
    fn pull_order_sorts_by_selectivity() {
        let a = setup(2); // ~500 matches with one predicate
        let b = setup(50); // ~20 matches
        let q = SpjrQuery {
            relations: vec![
                RelQuery { selection: Selection::new(vec![(0, 1)]), weights: vec![1.0, 0.0] },
                RelQuery { selection: Selection::new(vec![(0, 1)]), weights: vec![1.0, 0.0] },
            ],
            k: 5,
        };
        let plan = optimize(&[&a, &b], &q);
        assert_eq!(plan.pull_order, vec![1, 0], "more selective relation pulls first");
    }
}
