//! The query executer (Section 6.3): multi-way rank join with threshold
//! termination, plus the join-then-rank baseline.
//!
//! The rank join pulls from the per-relation streams in plan order, probes
//! the other relations' seen-tables on the join key, and emits a joined
//! result once its total score is no larger than the HRJN threshold
//! `T = max_i (last_i + Σ_{j≠i} first_j)` — at which point no future pull
//! can produce a better combination.

use std::collections::HashMap;

use rcube_core::QueryStats;
use rcube_storage::DiskSim;
use rcube_table::Tid;

use crate::optimizer::{Access, Plan};
use crate::relation::JoinRelation;
use crate::stream::{MaterializedStream, RankedStream, TupleStream};
use crate::SpjrQuery;

/// A joined answer: one tid per relation plus the combined score.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinedTuple {
    pub tids: Vec<Tid>,
    pub score: f64,
}

/// The result of an SPJR query.
#[derive(Debug)]
pub struct JoinResult {
    /// Ascending combined score.
    pub items: Vec<JoinedTuple>,
    pub stats: QueryStats,
}

/// The multi-way rank-join executor.
#[derive(Debug)]
pub struct RankJoin;

impl RankJoin {
    /// Runs `query` over `relations` under `plan`.
    pub fn run(
        relations: &[&JoinRelation],
        query: &SpjrQuery,
        plan: &Plan,
        disk: &DiskSim,
    ) -> JoinResult {
        let m = relations.len();
        assert!(m >= 2, "rank join needs at least two relations");
        let before = disk.stats().snapshot();
        let mut stats = QueryStats::default();

        // Open streams with list pruning: each stream skips join keys
        // absent from every other relation (Section 6.3.3).
        let mut streams: Vec<Box<dyn TupleStream + '_>> = Vec::with_capacity(m);
        for (i, (jr, rq)) in relations.iter().zip(&query.relations).enumerate() {
            let mut filter = jr.key_set().clone();
            for (j, other) in relations.iter().enumerate() {
                if j != i {
                    filter.retain(|k| other.key_set().contains(k));
                }
            }
            let stream: Box<dyn TupleStream> = match plan.access[i] {
                Access::RankAware => Box::new(RankedStream::open(
                    jr,
                    &rq.selection,
                    rq.weights.clone(),
                    Some(filter),
                    disk,
                )),
                Access::BooleanFirst => Box::new(MaterializedStream::open(
                    jr,
                    &rq.selection,
                    rq.weights.clone(),
                    disk,
                    Some(&filter),
                )),
            };
            streams.push(stream);
        }

        // Seen tables: per relation, key → [(tid, score)].
        let mut seen: Vec<HashMap<u32, Vec<(Tid, f64)>>> = vec![HashMap::new(); m];
        let mut first: Vec<Option<f64>> = vec![None; m];
        let mut last: Vec<f64> = vec![f64::NEG_INFINITY; m];
        let mut exhausted = vec![false; m];

        // Candidate joined results awaiting threshold clearance.
        let mut pending = std::collections::BinaryHeap::new();
        #[derive(Debug)]
        struct Pending(f64, Vec<Tid>);
        impl PartialEq for Pending {
            fn eq(&self, o: &Self) -> bool {
                self.0 == o.0 && self.1 == o.1
            }
        }
        impl Eq for Pending {}
        impl Ord for Pending {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                o.0.total_cmp(&self.0).then_with(|| o.1.cmp(&self.1))
            }
        }
        impl PartialOrd for Pending {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }

        let mut emitted: Vec<JoinedTuple> = Vec::with_capacity(query.k);

        'outer: loop {
            if exhausted.iter().all(|&e| e) {
                break;
            }
            for &i in &plan.pull_order {
                if exhausted[i] {
                    continue;
                }
                match streams[i].next(disk) {
                    None => {
                        exhausted[i] = true;
                        continue;
                    }
                    Some((tid, score)) => {
                        if first[i].is_none() {
                            first[i] = Some(score);
                        }
                        last[i] = score;
                        let key = relations[i].key_of(tid);
                        // Probe the other relations' seen tables: the
                        // Cartesian product of matches forms new joined
                        // candidates, assembled in relation order.
                        let mut combos: Vec<(Vec<Tid>, f64)> = vec![(Vec::with_capacity(m), score)];
                        let mut ok = true;
                        for (j, s) in seen.iter().enumerate() {
                            if j == i {
                                for (tids, _) in &mut combos {
                                    tids.push(tid);
                                }
                                continue;
                            }
                            let Some(matches) = s.get(&key) else {
                                ok = false;
                                break;
                            };
                            let mut next = Vec::with_capacity(combos.len() * matches.len());
                            for (tids, acc) in &combos {
                                for &(mt, ms) in matches {
                                    let mut t2 = tids.clone();
                                    t2.push(mt);
                                    next.push((t2, acc + ms));
                                }
                            }
                            combos = next;
                        }
                        if ok {
                            for (tids, total) in combos {
                                pending.push(Pending(total, tids));
                                stats.states_generated += 1;
                            }
                        }
                        seen[i].entry(key).or_default().push((tid, score));
                        stats.tuples_scored += 1;

                        // Emit cleared candidates: a future result must use
                        // an unreturned tuple from some stream i, so its
                        // score is at least
                        // `min_i (bound_i + Σ_{j≠i} low_j)` where `bound_i`
                        // lower-bounds stream i's unreturned tuples and
                        // `low_j` lower-bounds any tuple of stream j.
                        let low: Vec<f64> = (0..m)
                            .map(|j| first[j].unwrap_or_else(|| streams[j].bound()))
                            .collect();
                        let t = (0..m)
                            .map(|i| {
                                streams[i].bound()
                                    + low
                                        .iter()
                                        .enumerate()
                                        .filter(|&(j, _)| j != i)
                                        .map(|(_, v)| v)
                                        .sum::<f64>()
                            })
                            .fold(f64::INFINITY, f64::min);
                        while let Some(p) = pending.peek() {
                            if p.0 <= t {
                                let Pending(score, tids) = pending.pop().unwrap();
                                emitted.push(JoinedTuple { tids, score });
                                if emitted.len() >= query.k {
                                    break 'outer;
                                }
                            } else {
                                break;
                            }
                        }
                        stats.peak_heap = stats.peak_heap.max(pending.len() as u64);
                    }
                }
            }
        }
        // Drain remaining candidates if under k.
        while emitted.len() < query.k {
            match pending.pop() {
                Some(Pending(score, tids)) => emitted.push(JoinedTuple { tids, score }),
                None => break,
            }
        }

        stats.blocks_read = streams.iter().map(|s| s.blocks_read()).sum();
        stats.io = before.delta(&disk.stats().snapshot());
        emitted.sort_by(|a, b| a.score.total_cmp(&b.score).then_with(|| a.tids.cmp(&b.tids)));
        emitted.truncate(query.k);
        JoinResult { items: emitted, stats }
    }
}

/// The join-then-rank baseline: full hash join with predicates applied,
/// sort by combined score, truncate to k. Charges a full scan per relation.
pub fn full_join_topk(
    relations: &[&JoinRelation],
    query: &SpjrQuery,
    disk: &DiskSim,
) -> JoinResult {
    let before = disk.stats().snapshot();
    let mut stats = QueryStats::default();
    let m = relations.len();

    // Per relation: qualifying tuples grouped by key, with partial scores.
    let mut by_key: Vec<HashMap<u32, Vec<(Tid, f64)>>> = Vec::with_capacity(m);
    for (jr, rq) in relations.iter().zip(&query.relations) {
        let rel = jr.relation();
        let rows_per_page = (disk.page_size()
            / (4 * rel.schema().num_selection() + 8 * rel.schema().num_ranking() + 8))
            .max(1);
        for _ in 0..rel.len().div_ceil(rows_per_page) {
            disk.read(disk.alloc_page());
            stats.blocks_read += 1;
        }
        let f = rcube_func::Linear::new(rq.weights.clone());
        let mut map: HashMap<u32, Vec<(Tid, f64)>> = HashMap::new();
        for t in rel.tids() {
            if rq.selection.matches(rel, t) {
                map.entry(jr.key_of(t))
                    .or_default()
                    .push((t, rcube_func::RankFn::score(&f, &rel.ranking_point(t))));
            }
        }
        by_key.push(map);
    }

    // Join: expand combinations key by key.
    let mut results: Vec<JoinedTuple> = Vec::new();
    for (key, base) in &by_key[0] {
        let mut combos: Vec<(Vec<Tid>, f64)> = base.iter().map(|&(t, s)| (vec![t], s)).collect();
        let mut ok = true;
        for other in &by_key[1..] {
            let Some(matches) = other.get(key) else {
                ok = false;
                break;
            };
            let mut next = Vec::with_capacity(combos.len() * matches.len());
            for (tids, acc) in &combos {
                for &(mt, ms) in matches {
                    let mut t2 = tids.clone();
                    t2.push(mt);
                    next.push((t2, acc + ms));
                }
            }
            combos = next;
        }
        if ok {
            results.extend(combos.into_iter().map(|(tids, score)| JoinedTuple { tids, score }));
        }
    }
    results.sort_by(|a, b| a.score.total_cmp(&b.score).then_with(|| a.tids.cmp(&b.tids)));
    results.truncate(query.k);
    stats.io = before.delta(&disk.stats().snapshot());
    JoinResult { items: results, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use crate::{RelQuery, SpjrQuery};
    use rcube_table::gen::SyntheticSpec;
    use rcube_table::Selection;

    fn setup(tuples: usize, key_card: u32, seed: u64) -> JoinRelation {
        let rel = SyntheticSpec { tuples, cardinality: 4, seed, ..Default::default() }.generate();
        let keys: Vec<u32> = {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed + 1000);
            (0..tuples).map(|_| rng.gen_range(0..key_card)).collect()
        };
        let disk = DiskSim::with_defaults();
        JoinRelation::build(rel, keys, &disk)
    }

    fn two_way_query(k: usize) -> SpjrQuery {
        SpjrQuery {
            relations: vec![
                RelQuery { selection: Selection::new(vec![(0, 1)]), weights: vec![1.0, 0.5] },
                RelQuery { selection: Selection::new(vec![(1, 2)]), weights: vec![2.0, 1.0] },
            ],
            k,
        }
    }

    #[test]
    fn rank_join_matches_full_join_two_way() {
        let r1 = setup(400, 30, 1);
        let r2 = setup(300, 30, 2);
        let disk = DiskSim::with_defaults();
        let q = two_way_query(10);
        let rels = [&r1, &r2];
        let plan = optimize(&rels, &q);
        let fast = RankJoin::run(&rels, &q, &plan, &disk);
        let slow = full_join_topk(&rels, &q, &disk);
        assert_eq!(fast.items.len(), slow.items.len());
        for (a, b) in fast.items.iter().zip(&slow.items) {
            assert!((a.score - b.score).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn rank_join_matches_full_join_three_way() {
        let r1 = setup(200, 12, 3);
        let r2 = setup(180, 12, 4);
        let r3 = setup(150, 12, 5);
        let disk = DiskSim::with_defaults();
        let q = SpjrQuery {
            relations: vec![
                RelQuery { selection: Selection::all(), weights: vec![1.0, 0.0] },
                RelQuery { selection: Selection::new(vec![(0, 1)]), weights: vec![0.0, 1.0] },
                RelQuery { selection: Selection::all(), weights: vec![0.5, 0.5] },
            ],
            k: 8,
        };
        let rels = [&r1, &r2, &r3];
        let plan = optimize(&rels, &q);
        let fast = RankJoin::run(&rels, &q, &plan, &disk);
        let slow = full_join_topk(&rels, &q, &disk);
        assert_eq!(fast.items.len(), slow.items.len());
        for (a, b) in fast.items.iter().zip(&slow.items) {
            assert!((a.score - b.score).abs() < 1e-9);
        }
    }

    #[test]
    fn joined_tids_reference_matching_keys() {
        let r1 = setup(300, 15, 6);
        let r2 = setup(250, 15, 7);
        let disk = DiskSim::with_defaults();
        let q = two_way_query(10);
        let rels = [&r1, &r2];
        let plan = optimize(&rels, &q);
        let res = RankJoin::run(&rels, &q, &plan, &disk);
        for item in &res.items {
            assert_eq!(r1.key_of(item.tids[0]), r2.key_of(item.tids[1]));
            assert!(q.relations[0].selection.matches(r1.relation(), item.tids[0]));
            assert!(q.relations[1].selection.matches(r2.relation(), item.tids[1]));
        }
    }

    #[test]
    fn rank_join_stops_early_for_small_k() {
        let r1 = setup(2_000, 100, 8);
        let r2 = setup(2_000, 100, 9);
        let disk = DiskSim::with_defaults();
        let q = SpjrQuery {
            relations: vec![
                RelQuery { selection: Selection::all(), weights: vec![1.0, 1.0] },
                RelQuery { selection: Selection::all(), weights: vec![1.0, 1.0] },
            ],
            k: 5,
        };
        let rels = [&r1, &r2];
        let plan = optimize(&rels, &q);
        let fast = RankJoin::run(&rels, &q, &plan, &disk);
        let slow = full_join_topk(&rels, &q, &disk);
        for (a, b) in fast.items.iter().zip(&slow.items) {
            assert!((a.score - b.score).abs() < 1e-9);
        }
        assert!(
            fast.stats.tuples_scored < 2_000,
            "rank join should not consume whole inputs (pulled {})",
            fast.stats.tuples_scored
        );
    }

    #[test]
    fn empty_join_results_handled() {
        // Disjoint key domains: no joined rows.
        let rel1 = SyntheticSpec { tuples: 50, ..Default::default() }.generate();
        let rel2 = SyntheticSpec { tuples: 50, seed: 9, ..Default::default() }.generate();
        let disk = DiskSim::with_defaults();
        let r1 = JoinRelation::build(rel1, vec![1; 50], &disk);
        let r2 = JoinRelation::build(rel2, vec![2; 50], &disk);
        let q = SpjrQuery {
            relations: vec![
                RelQuery { selection: Selection::all(), weights: vec![1.0, 0.0] },
                RelQuery { selection: Selection::all(), weights: vec![1.0, 0.0] },
            ],
            k: 5,
        };
        let rels = [&r1, &r2];
        let plan = optimize(&rels, &q);
        let res = RankJoin::run(&rels, &q, &plan, &disk);
        assert!(res.items.is_empty());
    }
}
