//! SPJR queries: select–project–join–rank over multiple relations
//! (Chapter 6).
//!
//! Each relation carries its own ranking cube (R-tree partition +
//! signature cuboids); the system of Figure 6.1 is
//!
//! * a **query optimizer** ([`optimizer`]) choosing, per relation, between
//!   rank-aware selection (progressive, cube-driven) and Boolean-first
//!   materialization, plus a pull order;
//! * a **query executer** ([`executor`]) running rank-aware selection
//!   streams ([`stream`]) through a multi-way rank join (HRJN-style
//!   threshold join, Section 6.3.2) with **list pruning** of join keys that
//!   cannot match (Section 6.3.3).

pub mod executor;
pub mod optimizer;
pub mod relation;
pub mod stream;

pub use executor::{full_join_topk, JoinResult, RankJoin};
pub use optimizer::{optimize, Access, Plan};
pub use relation::JoinRelation;
pub use stream::RankedStream;

use rcube_table::Selection;

/// The per-relation part of an SPJR query: a Boolean selection plus linear
/// ranking weights over that relation's ranking dimensions.
#[derive(Debug, Clone)]
pub struct RelQuery {
    pub selection: Selection,
    /// One weight per ranking dimension of the relation (0 = unused).
    pub weights: Vec<f64>,
}

/// A multi-relational top-k query: natural join on the shared key, ranked
/// by the sum of per-relation linear scores.
#[derive(Debug, Clone)]
pub struct SpjrQuery {
    pub relations: Vec<RelQuery>,
    pub k: usize,
}
