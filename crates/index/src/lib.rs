//! Index substrates: B+-tree, R-tree and equi-depth grid partition.
//!
//! Chapter 3 partitions data with an equi-depth grid; Chapter 4 switches to
//! a hierarchical partition (R-tree); Chapter 5 merges multiple hierarchical
//! indices (B+-trees over single attributes, R-trees over attribute groups).
//! All three live here, built on the simulated paged storage so queries can
//! report the paper's disk-access counts.
//!
//! The [`HierIndex`] trait is the uniform view the index-merge framework
//! (Chapter 5) takes of any hierarchical index: nodes with bounding regions,
//! children, and leaf entries carrying `(tid, values)`.

pub mod bptree;
pub mod grid;
pub mod rtree;

use rcube_func::Rect;
use rcube_storage::DiskSim;
use rcube_table::Tid;

/// Handle to a node inside a hierarchical index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeHandle(pub u32);

/// Uniform read-only view of a hierarchical index (Section 5.1.1).
///
/// Each node occupies one page; [`HierIndex::read_node`] charges the I/O.
/// Node *paths* are the entry-position sequences `⟨p0, p1, …⟩` used to key
/// signatures and join-signatures (Sections 4.2.1, 5.3.1).
///
/// `Send + Sync` is a supertrait so searches holding `&dyn HierIndex`
/// stay `Send` and can run on shard worker threads; both implementations
/// (B+-tree, R-tree) are immutable after build.
pub trait HierIndex: Send + Sync {
    /// Number of ranking dimensions the index covers (1 for a B+-tree).
    fn dims(&self) -> usize;

    /// The root node.
    fn root(&self) -> NodeHandle;

    /// True when `n` is a leaf.
    fn is_leaf(&self, n: NodeHandle) -> bool;

    /// Bounding region of `n` over the index's dimensions.
    fn region(&self, n: NodeHandle) -> Rect;

    /// Child nodes of an internal node (empty for leaves).
    fn children(&self, n: NodeHandle) -> Vec<NodeHandle>;

    /// Entries of a leaf node: `(tid, values on the index's dimensions)`.
    fn leaf_entries(&self, n: NodeHandle) -> Vec<(Tid, Vec<f64>)>;

    /// Charges the I/O of fetching `n` from disk.
    fn read_node(&self, disk: &DiskSim, n: NodeHandle);

    /// Entry-position path from the root to `n` (root has the empty path).
    fn node_path(&self, n: NodeHandle) -> Vec<u16>;

    /// Number of levels (root level = 1).
    fn height(&self) -> usize;

    /// Maximum node fanout `M`.
    fn max_fanout(&self) -> usize;

    /// Total node count (size/space experiments).
    fn node_count(&self) -> usize;
}

pub use bptree::BPlusTree;
pub use grid::GridPartition;
pub use rtree::{RTree, RTreeConfig};
