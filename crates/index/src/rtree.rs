//! A paged R-tree over the ranking dimensions.
//!
//! The hierarchical partition of Chapter 4: nested, possibly overlapping
//! boxes with `m..=M` entries per node (Guttman's structure). Supports
//!
//! * STR bulk-loading (how the cubes are built offline),
//! * single-tuple insertion with quadratic split, reporting the **update
//!   set** of tuples whose root-to-slot paths changed — exactly what the
//!   incremental signature maintenance of Section 4.2.5 consumes
//!   (Figures 4.5/4.6), and
//! * deletion with Guttman's condense-tree + re-insertion.
//!
//! Tuple paths are `⟨p0, …, p_{d−1}, slot⟩`: entry positions from the root
//! down to the tuple's slot inside its leaf (Section 4.2.1).

use std::collections::HashMap;

use rcube_func::Rect;
use rcube_storage::{ByteReader, ByteWriter, DiskSim, PageId, StorageError};
use rcube_table::{Relation, Tid};

use crate::{HierIndex, NodeHandle};

/// R-tree sizing parameters.
#[derive(Debug, Clone)]
pub struct RTreeConfig {
    /// Maximum entries per node (`M`).
    pub max_entries: usize,
    /// Minimum entries per node (`m`), for splits/condensing.
    pub min_entries: usize,
    /// Bulk-load fill fraction of `M` (default 0.7): packing nodes full
    /// would make the very first insertion split all the way to the root.
    pub bulk_fill: f64,
}

impl RTreeConfig {
    /// Page-derived fanout: `M = page / (8·dims + 4)` — yields the thesis'
    /// 204 (2-d) … 93 (5-d) figures for 4 KB pages. `m = 0.4·M`.
    pub fn for_page(page_size: usize, dims: usize) -> Self {
        let max_entries = (page_size / (8 * dims + 4)).max(4);
        Self { max_entries, min_entries: (max_entries * 2 / 5).max(2), bulk_fill: 0.7 }
    }

    /// Small fanout handy for unit tests mirroring the thesis' toy figures.
    pub fn small(max_entries: usize) -> Self {
        Self { max_entries, min_entries: (max_entries * 2 / 5).max(1), bulk_fill: 0.7 }
    }
}

/// A path update produced by incremental maintenance: `old_path == None`
/// for freshly inserted tuples; `new_path == None` for deleted ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathUpdate {
    pub tid: Tid,
    pub old_path: Option<Vec<u16>>,
    pub new_path: Option<Vec<u16>>,
}

#[derive(Debug, Clone)]
enum NodeKind {
    Internal(Vec<u32>),
    Leaf(Vec<(Tid, Vec<f64>)>),
}

#[derive(Debug, Clone)]
struct Node {
    mbr: Rect,
    kind: NodeKind,
    parent: Option<u32>,
    page: PageId,
}

/// The R-tree.
#[derive(Debug)]
pub struct RTree {
    dims: usize,
    nodes: Vec<Node>,
    root: u32,
    height: usize,
    config: RTreeConfig,
    /// tid → leaf node (answers "which leaf holds this tuple" in O(1)).
    tid_leaf: HashMap<Tid, u32>,
}

impl RTree {
    /// Bulk-loads `points` with Sort-Tile-Recursive packing.
    pub fn bulk_load(disk: &DiskSim, points: Vec<(Tid, Vec<f64>)>, config: RTreeConfig) -> Self {
        assert!(!points.is_empty(), "cannot bulk-load an empty R-tree");
        let dims = points[0].1.len();
        let mut tree = Self {
            dims,
            nodes: Vec::new(),
            root: 0,
            height: 1,
            config,
            tid_leaf: HashMap::with_capacity(points.len()),
        };
        // Pack to the fill fraction, not to capacity, so subsequent
        // insertions do not cascade splits from the first tuple on. Keeping
        // `cap ≥ 2·min` lets a short trailing chunk be split into two
        // halves that both satisfy the minimum fill.
        let min = tree.config.min_entries.max(1);
        let cap = ((tree.config.max_entries as f64 * tree.config.bulk_fill) as usize)
            .max(2 * min)
            .clamp(min, tree.config.max_entries);

        // STR: recursively sort/tile the points, then chunk into leaves.
        let mut pts = points;
        str_order(&mut pts, 0, dims, cap);
        let mut level: Vec<u32> = Vec::new();
        let mut start = 0;
        for size in pack_sizes(pts.len(), cap, min) {
            let id = tree.alloc_leaf(disk, pts[start..start + size].to_vec());
            level.push(id);
            start += size;
        }
        // Pack upper levels from consecutive (spatially coherent) runs.
        while level.len() > 1 {
            let mut next = Vec::new();
            let mut start = 0;
            for size in pack_sizes(level.len(), cap, min) {
                let id = tree.alloc_internal(disk, level[start..start + size].to_vec());
                next.push(id);
                start += size;
            }
            level = next;
            tree.height += 1;
        }
        tree.root = level[0];
        tree
    }

    /// Bulk-loads over a relation's ranking dimensions `dims` (all of them
    /// when `dims` is empty).
    pub fn over_relation(
        disk: &DiskSim,
        rel: &Relation,
        dims: &[usize],
        config: RTreeConfig,
    ) -> Self {
        let use_dims: Vec<usize> =
            if dims.is_empty() { (0..rel.schema().num_ranking()).collect() } else { dims.to_vec() };
        let points = rel.tids().map(|t| (t, rel.ranking_point_proj(t, &use_dims))).collect();
        Self::bulk_load(disk, points, config)
    }

    /// Number of spatial dimensions.
    pub fn point_dims(&self) -> usize {
        self.dims
    }

    /// Sizing configuration.
    pub fn config(&self) -> &RTreeConfig {
        &self.config
    }

    /// Approximate materialized size in bytes (entry-count model, matching
    /// the fanout math: `8·dims + 4` per entry).
    pub fn byte_size(&self) -> usize {
        let entry = 8 * self.dims + 4;
        self.live_nodes()
            .map(|n| match &self.nodes[n as usize].kind {
                NodeKind::Leaf(e) => e.len() * entry,
                NodeKind::Internal(c) => c.len() * (16 * self.dims + 4),
            })
            .sum()
    }

    /// The tuple path `⟨p0, …, slot⟩` of `tid`.
    pub fn tuple_path(&self, tid: Tid) -> Option<Vec<u16>> {
        let leaf = *self.tid_leaf.get(&tid)?;
        let mut path = self.path_of_node(leaf);
        let slot = match &self.nodes[leaf as usize].kind {
            NodeKind::Leaf(entries) => entries.iter().position(|&(t, _)| t == tid)?,
            NodeKind::Internal(_) => unreachable!("tid_leaf maps to a leaf"),
        };
        path.push(slot as u16);
        Some(path)
    }

    /// Paths for every stored tuple (cube construction input).
    pub fn tuple_paths(&self) -> Vec<(Tid, Vec<u16>)> {
        let mut out = Vec::with_capacity(self.tid_leaf.len());
        let mut path = Vec::new();
        self.collect_paths(self.root, &mut path, &mut out);
        out
    }

    fn collect_paths(&self, node: u32, path: &mut Vec<u16>, out: &mut Vec<(Tid, Vec<u16>)>) {
        match &self.nodes[node as usize].kind {
            NodeKind::Leaf(entries) => {
                for (slot, &(tid, _)) in entries.iter().enumerate() {
                    path.push(slot as u16);
                    out.push((tid, path.clone()));
                    path.pop();
                }
            }
            NodeKind::Internal(children) => {
                for (i, &c) in children.iter().enumerate() {
                    path.push(i as u16);
                    self.collect_paths(c, path, out);
                    path.pop();
                }
            }
        }
    }

    /// Inserts a tuple, returning the path updates the signature cube must
    /// apply (Algorithm 2's update set `U`).
    pub fn insert(&mut self, disk: &DiskSim, tid: Tid, point: Vec<f64>) -> Vec<PathUpdate> {
        assert_eq!(point.len(), self.dims, "point arity mismatch");
        assert!(!self.tid_leaf.contains_key(&tid), "duplicate tid {tid}");

        // Walk the choose-leaf path.
        let mut path_nodes = vec![self.root];
        while let NodeKind::Internal(children) =
            &self.nodes[*path_nodes.last().unwrap() as usize].kind
        {
            let best = children
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let (ea, eb) = (self.enlargement(a, &point), self.enlargement(b, &point));
                    ea.total_cmp(&eb).then(
                        self.nodes[a as usize]
                            .mbr
                            .volume()
                            .total_cmp(&self.nodes[b as usize].mbr.volume()),
                    )
                })
                .expect("internal node has children");
            path_nodes.push(best);
        }
        let leaf = *path_nodes.last().unwrap();

        // Determine the highest node that will split: walking up from the
        // leaf, a node splits while it is at capacity.
        let mut split_top: Option<u32> = None;
        for &n in path_nodes.iter().rev() {
            if self.node_len(n) >= self.config.max_entries {
                split_top = Some(n);
            } else {
                break;
            }
        }

        // Capture old paths for every tuple whose position may change.
        let mut old_paths: HashMap<Tid, Vec<u16>> = HashMap::new();
        let mut touched: Vec<Tid> = Vec::new();
        if let Some(top) = split_top {
            let scope = if top == self.root { self.root } else { top };
            let mut prefix = self.path_of_node(scope);
            let mut collected = Vec::new();
            // Re-root collection at `scope` by temporarily extending prefix.
            self.collect_paths(scope, &mut prefix, &mut collected);
            for (t, p) in collected {
                touched.push(t);
                old_paths.insert(t, p);
            }
        }

        // Perform the insertion with cascading quadratic splits.
        self.insert_entry(disk, leaf, tid, point);

        // Assemble the update set.
        let mut updates = Vec::with_capacity(touched.len() + 1);
        updates.push(PathUpdate { tid, old_path: None, new_path: self.tuple_path(tid) });
        for t in touched {
            let new_path = self.tuple_path(t);
            let old_path = old_paths.remove(&t);
            if new_path.as_ref() != old_path.as_ref() {
                updates.push(PathUpdate { tid: t, old_path, new_path });
            }
        }
        updates
    }

    /// Deletes a tuple (condense-tree with re-insertion), returning path
    /// updates. Conservatively recomputes all paths — deletion is not on
    /// the benchmarked fast path (the thesis benchmarks insertion only).
    pub fn delete(&mut self, disk: &DiskSim, tid: Tid) -> Vec<PathUpdate> {
        let Some(&leaf) = self.tid_leaf.get(&tid) else {
            return Vec::new();
        };
        let before: HashMap<Tid, Vec<u16>> = self.tuple_paths().into_iter().collect();

        // Remove the entry.
        if let NodeKind::Leaf(entries) = &mut self.nodes[leaf as usize].kind {
            entries.retain(|&(t, _)| t != tid);
        }
        self.tid_leaf.remove(&tid);
        self.recompute_mbrs_upward(leaf);

        // Condense: collect orphaned entries from underflowing nodes.
        let mut orphans: Vec<(Tid, Vec<f64>)> = Vec::new();
        let mut cur = leaf;
        while cur != self.root {
            let parent = self.nodes[cur as usize].parent.expect("non-root has parent");
            if self.node_len(cur) < self.config.min_entries {
                // Detach `cur` from its parent and stash its tuples.
                if let NodeKind::Internal(children) = &mut self.nodes[parent as usize].kind {
                    children.retain(|&c| c != cur);
                }
                let mut stash = Vec::new();
                self.collect_leaf_entries(cur, &mut stash);
                for &(t, _) in &stash {
                    self.tid_leaf.remove(&t);
                }
                orphans.extend(stash);
                self.recompute_mbrs_upward(parent);
            }
            cur = parent;
        }
        // Shrink the root if it lost all but one child.
        loop {
            let next = match &self.nodes[self.root as usize].kind {
                NodeKind::Internal(children) if children.len() == 1 && self.height > 1 => {
                    children[0]
                }
                _ => break,
            };
            self.root = next;
            self.nodes[next as usize].parent = None;
            self.height -= 1;
        }
        for (t, p) in orphans {
            self.reinsert_point(disk, t, p);
        }

        // Diff against the snapshot.
        let after: HashMap<Tid, Vec<u16>> = self.tuple_paths().into_iter().collect();
        let mut updates =
            vec![PathUpdate { tid, old_path: Some(before[&tid].clone()), new_path: None }];
        for (t, old) in &before {
            if *t == tid {
                continue;
            }
            let new = after.get(t);
            if new != Some(old) {
                updates.push(PathUpdate {
                    tid: *t,
                    old_path: Some(old.clone()),
                    new_path: new.cloned(),
                });
            }
        }
        updates
    }

    // ---- internals -------------------------------------------------------

    fn alloc_leaf(&mut self, disk: &DiskSim, entries: Vec<(Tid, Vec<f64>)>) -> u32 {
        let id = self.nodes.len() as u32;
        let mut mbr = Rect::empty(self.dims);
        for (tid, p) in &entries {
            mbr.expand(p);
            self.tid_leaf.insert(*tid, id);
        }
        let page = disk.alloc_page();
        disk.write(page);
        self.nodes.push(Node { mbr, kind: NodeKind::Leaf(entries), parent: None, page });
        id
    }

    fn alloc_internal(&mut self, disk: &DiskSim, children: Vec<u32>) -> u32 {
        let id = self.nodes.len() as u32;
        let mut mbr = Rect::empty(self.dims);
        for &c in &children {
            mbr.expand_rect(&self.nodes[c as usize].mbr.clone());
            self.nodes[c as usize].parent = Some(id);
        }
        let page = disk.alloc_page();
        disk.write(page);
        self.nodes.push(Node { mbr, kind: NodeKind::Internal(children), parent: None, page });
        id
    }

    fn node_len(&self, n: u32) -> usize {
        match &self.nodes[n as usize].kind {
            NodeKind::Leaf(e) => e.len(),
            NodeKind::Internal(c) => c.len(),
        }
    }

    fn enlargement(&self, n: u32, p: &[f64]) -> f64 {
        let mbr = &self.nodes[n as usize].mbr;
        let mut grown = mbr.clone();
        grown.expand(p);
        grown.volume() - mbr.volume()
    }

    fn path_of_node(&self, n: u32) -> Vec<u16> {
        let mut path = Vec::new();
        let mut cur = n;
        while let Some(parent) = self.nodes[cur as usize].parent {
            let pos = match &self.nodes[parent as usize].kind {
                NodeKind::Internal(c) => c.iter().position(|&x| x == cur).unwrap(),
                NodeKind::Leaf(_) => unreachable!(),
            };
            path.push(pos as u16);
            cur = parent;
        }
        path.reverse();
        path
    }

    fn collect_leaf_entries(&self, n: u32, out: &mut Vec<(Tid, Vec<f64>)>) {
        match &self.nodes[n as usize].kind {
            NodeKind::Leaf(e) => out.extend(e.iter().cloned()),
            NodeKind::Internal(c) => {
                for &child in c {
                    self.collect_leaf_entries(child, out);
                }
            }
        }
    }

    fn insert_entry(&mut self, disk: &DiskSim, leaf: u32, tid: Tid, point: Vec<f64>) {
        if let NodeKind::Leaf(entries) = &mut self.nodes[leaf as usize].kind {
            entries.push((tid, point.clone()));
        }
        self.tid_leaf.insert(tid, leaf);
        self.nodes[leaf as usize].mbr.expand(&point);
        disk.write(self.nodes[leaf as usize].page);
        self.recompute_mbrs_upward(leaf);
        if self.node_len(leaf) > self.config.max_entries {
            self.split_node(disk, leaf);
        }
    }

    /// Quadratic split of an overfull node, propagating upward.
    fn split_node(&mut self, disk: &DiskSim, n: u32) {
        // Collect entry rects for seed picking.
        let rects: Vec<Rect> = match &self.nodes[n as usize].kind {
            NodeKind::Leaf(e) => e.iter().map(|(_, p)| Rect::point(p)).collect(),
            NodeKind::Internal(c) => {
                c.iter().map(|&c| self.nodes[c as usize].mbr.clone()).collect()
            }
        };
        let (g1, g2) = quadratic_partition(&rects, self.config.min_entries);

        // Materialize the two groups.
        let sibling = match self.nodes[n as usize].kind.clone() {
            NodeKind::Leaf(entries) => {
                let keep: Vec<_> = g1.iter().map(|&i| entries[i].clone()).collect();
                let give: Vec<_> = g2.iter().map(|&i| entries[i].clone()).collect();
                self.replace_leaf_entries(n, keep);
                self.alloc_leaf(disk, give)
            }
            NodeKind::Internal(children) => {
                let keep: Vec<u32> = g1.iter().map(|&i| children[i]).collect();
                let give: Vec<u32> = g2.iter().map(|&i| children[i]).collect();
                self.replace_internal_children(n, keep);
                self.alloc_internal(disk, give)
            }
        };
        disk.write(self.nodes[n as usize].page);

        match self.nodes[n as usize].parent {
            Some(parent) => {
                if let NodeKind::Internal(children) = &mut self.nodes[parent as usize].kind {
                    children.push(sibling);
                }
                self.nodes[sibling as usize].parent = Some(parent);
                self.recompute_mbrs_upward(parent);
                disk.write(self.nodes[parent as usize].page);
                if self.node_len(parent) > self.config.max_entries {
                    self.split_node(disk, parent);
                }
            }
            None => {
                // Root split: grow the tree.
                let new_root = self.alloc_internal(disk, vec![n, sibling]);
                self.root = new_root;
                self.height += 1;
            }
        }
    }

    fn replace_leaf_entries(&mut self, n: u32, entries: Vec<(Tid, Vec<f64>)>) {
        let mut mbr = Rect::empty(self.dims);
        for (tid, p) in &entries {
            mbr.expand(p);
            self.tid_leaf.insert(*tid, n);
        }
        self.nodes[n as usize].mbr = mbr;
        self.nodes[n as usize].kind = NodeKind::Leaf(entries);
    }

    fn replace_internal_children(&mut self, n: u32, children: Vec<u32>) {
        let mut mbr = Rect::empty(self.dims);
        for &c in &children {
            mbr.expand_rect(&self.nodes[c as usize].mbr.clone());
            self.nodes[c as usize].parent = Some(n);
        }
        self.nodes[n as usize].mbr = mbr;
        self.nodes[n as usize].kind = NodeKind::Internal(children);
    }

    fn recompute_mbrs_upward(&mut self, from: u32) {
        let mut cur = Some(from);
        while let Some(n) = cur {
            let mbr = match &self.nodes[n as usize].kind {
                NodeKind::Leaf(e) => {
                    let mut r = Rect::empty(self.dims);
                    for (_, p) in e {
                        r.expand(p);
                    }
                    r
                }
                NodeKind::Internal(c) => {
                    let mut r = Rect::empty(self.dims);
                    for &child in c {
                        r.expand_rect(&self.nodes[child as usize].mbr.clone());
                    }
                    r
                }
            };
            self.nodes[n as usize].mbr = mbr;
            cur = self.nodes[n as usize].parent;
        }
    }

    fn reinsert_point(&mut self, disk: &DiskSim, tid: Tid, point: Vec<f64>) {
        // Choose-leaf descent, then plain entry insertion.
        let mut cur = self.root;
        while let NodeKind::Internal(children) = &self.nodes[cur as usize].kind {
            cur = children
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    self.enlargement(a, &point).total_cmp(&self.enlargement(b, &point))
                })
                .unwrap();
        }
        self.insert_entry(disk, cur, tid, point);
    }

    /// Serializes the full tree (geometry, structure, page ids, sizing)
    /// for cube persistence; [`Self::from_bytes`] is the inverse. Page ids
    /// are preserved so a reopened tree charges the same simulated I/O
    /// pattern as the one that built the cube.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.dims as u64);
        w.put_u32(self.root);
        w.put_u64(self.height as u64);
        w.put_u64(self.config.max_entries as u64);
        w.put_u64(self.config.min_entries as u64);
        w.put_f64(self.config.bulk_fill);
        w.put_u64(self.nodes.len() as u64);
        for node in &self.nodes {
            w.put_u64(node.page.0);
            w.put_u32(node.parent.map_or(u32::MAX, |p| p));
            for d in 0..self.dims {
                w.put_f64(node.mbr.lo(d));
                w.put_f64(node.mbr.hi(d));
            }
            match &node.kind {
                NodeKind::Internal(children) => {
                    w.put_u8(0);
                    w.put_u64(children.len() as u64);
                    for &c in children {
                        w.put_u32(c);
                    }
                }
                NodeKind::Leaf(entries) => {
                    w.put_u8(1);
                    w.put_u64(entries.len() as u64);
                    for (tid, point) in entries {
                        w.put_u32(*tid);
                        for &v in point {
                            w.put_f64(v);
                        }
                    }
                }
            }
        }
        w.into_bytes()
    }

    /// Deserializes a tree written by [`Self::to_bytes`], rebuilding the
    /// tid → leaf map from the stored leaves.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StorageError> {
        const LIMIT: usize = 1 << 30;
        let mut r = ByteReader::new(bytes);
        let dims = r.count(64)?;
        let root = r.u32()?;
        let height = r.count(LIMIT)?;
        let max_entries = r.count(LIMIT)?;
        let min_entries = r.count(LIMIT)?;
        let bulk_fill = r.f64()?;
        let node_count = r.count(LIMIT)?;
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let page = PageId(r.u64()?);
            let parent = match r.u32()? {
                u32::MAX => None,
                p => Some(p),
            };
            let (mut lo, mut hi) = (Vec::with_capacity(dims), Vec::with_capacity(dims));
            for _ in 0..dims {
                lo.push(r.f64()?);
                hi.push(r.f64()?);
            }
            // Rect::new asserts lo <= hi, so reject garbled bounds —
            // including NaN, which is incomparable — as a typed error
            // instead of panicking.
            let ordered = |l: &f64, h: &f64| {
                matches!(
                    l.partial_cmp(h),
                    Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                )
            };
            if !lo.iter().zip(&hi).all(|(l, h)| ordered(l, h)) {
                return Err(StorageError::Malformed("R-tree MBR bounds out of order"));
            }
            let mbr = Rect::new(lo, hi);
            let kind = match r.u8()? {
                0 => {
                    let n = r.count(LIMIT)?;
                    let mut children = Vec::with_capacity(n);
                    for _ in 0..n {
                        children.push(r.u32()?);
                    }
                    NodeKind::Internal(children)
                }
                1 => {
                    let n = r.count(LIMIT)?;
                    let mut entries = Vec::with_capacity(n);
                    for _ in 0..n {
                        let tid = r.u32()?;
                        let mut point = Vec::with_capacity(dims);
                        for _ in 0..dims {
                            point.push(r.f64()?);
                        }
                        entries.push((tid, point));
                    }
                    NodeKind::Leaf(entries)
                }
                _ => return Err(StorageError::Malformed("unknown R-tree node kind")),
            };
            nodes.push(Node { mbr, kind, parent, page });
        }
        if root as usize >= nodes.len() {
            return Err(StorageError::Malformed("R-tree root out of range"));
        }
        // Structural validation before any traversal: every node index in
        // range, and the root-reachable graph acyclic (live_nodes has no
        // visited set, so a cycle here would loop forever).
        for node in &nodes {
            if let Some(p) = node.parent {
                if p as usize >= nodes.len() {
                    return Err(StorageError::Malformed("R-tree parent index out of range"));
                }
            }
            if let NodeKind::Internal(children) = &node.kind {
                if children.iter().any(|&c| c as usize >= nodes.len()) {
                    return Err(StorageError::Malformed("R-tree child index out of range"));
                }
            }
        }
        let mut tid_leaf = HashMap::new();
        let mut visited = vec![false; nodes.len()];
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut visited[n as usize], true) {
                return Err(StorageError::Malformed("R-tree node reachable twice (cycle)"));
            }
            match &nodes[n as usize].kind {
                NodeKind::Internal(children) => stack.extend_from_slice(children),
                NodeKind::Leaf(entries) => {
                    for &(tid, _) in entries {
                        tid_leaf.insert(tid, n);
                    }
                }
            }
        }
        Ok(Self {
            dims,
            nodes,
            root,
            height,
            config: RTreeConfig { max_entries, min_entries, bulk_fill },
            tid_leaf,
        })
    }

    fn live_nodes(&self) -> impl Iterator<Item = u32> + '_ {
        // Nodes reachable from the root.
        let mut stack = vec![self.root];
        let mut seen = Vec::new();
        while let Some(n) = stack.pop() {
            seen.push(n);
            if let NodeKind::Internal(c) = &self.nodes[n as usize].kind {
                stack.extend_from_slice(c);
            }
        }
        seen.into_iter()
    }
}

/// Guttman's quadratic split: pick the two seeds wasting the most area,
/// then greedily assign by least enlargement, honouring `min_entries`.
fn quadratic_partition(rects: &[Rect], min_entries: usize) -> (Vec<usize>, Vec<usize>) {
    let n = rects.len();
    debug_assert!(n >= 2);
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let waste = rects[i].union_volume(&rects[j]) - rects[i].volume() - rects[j].volume();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    let mut g1 = vec![s1];
    let mut g2 = vec![s2];
    let mut r1 = rects[s1].clone();
    let mut r2 = rects[s2].clone();
    let mut rest: Vec<usize> = (0..n).filter(|&i| i != s1 && i != s2).collect();
    while let Some(pos) = pick_next(&rest, &r1, &r2, rects) {
        let i = rest.swap_remove(pos);
        let remaining = rest.len();
        // Force-assign to honour the minimum fill.
        if g1.len() + remaining < min_entries {
            r1.expand_rect(&rects[i]);
            g1.push(i);
            continue;
        }
        if g2.len() + remaining < min_entries {
            r2.expand_rect(&rects[i]);
            g2.push(i);
            continue;
        }
        let e1 = r1.union_volume(&rects[i]) - r1.volume();
        let e2 = r2.union_volume(&rects[i]) - r2.volume();
        if e1 < e2 || (e1 == e2 && g1.len() <= g2.len()) {
            r1.expand_rect(&rects[i]);
            g1.push(i);
        } else {
            r2.expand_rect(&rects[i]);
            g2.push(i);
        }
    }
    (g1, g2)
}

/// PickNext: the entry with the largest preference gap between groups.
fn pick_next(rest: &[usize], r1: &Rect, r2: &Rect, rects: &[Rect]) -> Option<usize> {
    rest.iter()
        .enumerate()
        .max_by(|(_, &a), (_, &b)| {
            let da = (r1.union_volume(&rects[a]) - r2.union_volume(&rects[a])).abs();
            let db = (r1.union_volume(&rects[b]) - r2.union_volume(&rects[b])).abs();
            da.total_cmp(&db)
        })
        .map(|(pos, _)| pos)
}

impl HierIndex for RTree {
    fn dims(&self) -> usize {
        self.dims
    }

    fn root(&self) -> NodeHandle {
        NodeHandle(self.root)
    }

    fn is_leaf(&self, n: NodeHandle) -> bool {
        matches!(self.nodes[n.0 as usize].kind, NodeKind::Leaf(_))
    }

    fn region(&self, n: NodeHandle) -> Rect {
        self.nodes[n.0 as usize].mbr.clone()
    }

    fn children(&self, n: NodeHandle) -> Vec<NodeHandle> {
        match &self.nodes[n.0 as usize].kind {
            NodeKind::Internal(c) => c.iter().map(|&i| NodeHandle(i)).collect(),
            NodeKind::Leaf(_) => Vec::new(),
        }
    }

    fn leaf_entries(&self, n: NodeHandle) -> Vec<(Tid, Vec<f64>)> {
        match &self.nodes[n.0 as usize].kind {
            NodeKind::Leaf(e) => e.clone(),
            NodeKind::Internal(_) => Vec::new(),
        }
    }

    fn read_node(&self, disk: &DiskSim, n: NodeHandle) {
        disk.read(self.nodes[n.0 as usize].page);
    }

    fn node_path(&self, n: NodeHandle) -> Vec<u16> {
        self.path_of_node(n.0)
    }

    fn height(&self) -> usize {
        self.height
    }

    fn max_fanout(&self) -> usize {
        self.config.max_entries
    }

    fn node_count(&self) -> usize {
        self.live_nodes().count()
    }
}

/// Chunk sizes covering `n` entries with every chunk in `[min, cap]`
/// (except a lone root-level chunk smaller than `min` when `n < min`).
/// Requires `cap ≥ 2·min` so a short trailing chunk can be rebalanced.
fn pack_sizes(n: usize, cap: usize, min: usize) -> Vec<usize> {
    debug_assert!(cap >= 2 * min || n <= cap);
    let mut sizes = Vec::with_capacity(n.div_ceil(cap));
    let mut rem = n;
    while rem > 0 {
        if rem <= cap {
            sizes.push(rem);
            break;
        }
        if rem - cap < min {
            // Split the remainder into two balanced halves, both ≥ min.
            let half = rem / 2;
            sizes.push(rem - half);
            sizes.push(half);
            break;
        }
        sizes.push(cap);
        rem -= cap;
    }
    sizes
}

/// Orders points Sort-Tile-Recursively in place.
fn str_order(pts: &mut [(Tid, Vec<f64>)], dim: usize, dims: usize, leaf_cap: usize) {
    if pts.len() <= leaf_cap || dim >= dims {
        return;
    }
    pts.sort_unstable_by(|a, b| a.1[dim].total_cmp(&b.1[dim]));
    let pages = pts.len().div_ceil(leaf_cap);
    let slabs = (pages as f64).powf(1.0 / (dims - dim) as f64).ceil() as usize;
    let slab_size = pts.len().div_ceil(slabs);
    for chunk in pts.chunks_mut(slab_size) {
        str_order(chunk, dim + 1, dims, leaf_cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, dims: usize, seed: u64) -> Vec<(Tid, Vec<f64>)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|i| (i as Tid, (0..dims).map(|_| rng.gen::<f64>()).collect())).collect()
    }

    /// Structural invariants: MBR containment, fill factors, parent links,
    /// tid_leaf consistency.
    fn check_invariants(t: &RTree) {
        let mut stack = vec![t.root];
        let mut tuple_count = 0;
        while let Some(n) = stack.pop() {
            let node = &t.nodes[n as usize];
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    assert!(
                        n == t.root || entries.len() >= t.config.min_entries,
                        "leaf underflow: {}",
                        entries.len()
                    );
                    assert!(entries.len() <= t.config.max_entries);
                    for (tid, p) in entries {
                        assert!(node.mbr.contains(p), "leaf MBR misses point");
                        assert_eq!(t.tid_leaf[tid], n, "tid_leaf out of date");
                        tuple_count += 1;
                    }
                }
                NodeKind::Internal(children) => {
                    assert!(
                        n == t.root || children.len() >= t.config.min_entries,
                        "internal underflow"
                    );
                    assert!(children.len() <= t.config.max_entries);
                    for &c in children {
                        assert_eq!(t.nodes[c as usize].parent, Some(n), "parent link broken");
                        assert!(
                            node.mbr.covers(&t.nodes[c as usize].mbr),
                            "child MBR escapes parent"
                        );
                        stack.push(c);
                    }
                }
            }
        }
        assert_eq!(tuple_count, t.tid_leaf.len());
    }

    #[test]
    fn serialization_round_trips() {
        let disk = DiskSim::with_defaults();
        let pts = random_points(700, 3, 11);
        let t = RTree::bulk_load(&disk, pts.clone(), RTreeConfig::small(12));
        let back = RTree::from_bytes(&t.to_bytes()).expect("round trip");
        check_invariants(&back);
        assert_eq!(back.point_dims(), t.point_dims());
        assert_eq!(back.height(), t.height());
        assert_eq!(back.node_count(), t.node_count());
        for (tid, _) in &pts {
            assert_eq!(back.tuple_path(*tid), t.tuple_path(*tid), "path of tid {tid}");
        }
        assert!(RTree::from_bytes(&t.to_bytes()[..10]).is_err());
    }

    #[test]
    fn malformed_serialization_fails_typed_not_by_panic() {
        // A minimal hand-built blob: one internal node whose only child is
        // itself (a cycle), which must be rejected, not looped on.
        let disk = DiskSim::with_defaults();
        let t = RTree::bulk_load(&disk, random_points(5, 2, 3), RTreeConfig::small(8));
        let good = t.to_bytes();
        // Locate the root node's record and splice in garbage variants via
        // re-serialization of crafted trees instead: child out of range.
        let mut w = rcube_storage::ByteWriter::new();
        w.put_u64(2); // dims
        w.put_u32(0); // root
        w.put_u64(1); // height
        w.put_u64(8); // max_entries
        w.put_u64(2); // min_entries
        w.put_f64(0.7);
        w.put_u64(1); // one node
        w.put_u64(0); // page
        w.put_u32(u32::MAX); // no parent
        for _ in 0..2 {
            w.put_f64(0.0);
            w.put_f64(1.0);
        }
        w.put_u8(0); // internal
        w.put_u64(1);
        let mut oob = w.into_bytes();
        let mut cycle = oob.clone();
        oob.extend_from_slice(&7u32.to_le_bytes()); // child 7 of 1 node
        cycle.extend_from_slice(&0u32.to_le_bytes()); // child = self
        assert!(RTree::from_bytes(&oob).is_err(), "out-of-range child must fail");
        assert!(RTree::from_bytes(&cycle).is_err(), "self-cycle must fail");
        // NaN MBR bounds fail typed too (NaN <= x is false).
        let mut nan = good.clone();
        let mbr_off = 8 + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 4; // first node's first lo
        nan[mbr_off..mbr_off + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(RTree::from_bytes(&nan).is_err(), "NaN bound must fail");
    }

    #[test]
    fn bulk_load_preserves_all_points() {
        let disk = DiskSim::with_defaults();
        let pts = random_points(500, 2, 1);
        let t = RTree::bulk_load(&disk, pts.clone(), RTreeConfig::small(8));
        check_invariants(&t);
        let mut seen: Vec<Tid> = t.tuple_paths().into_iter().map(|(t, _)| t).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn page_fanout_matches_thesis_numbers() {
        assert_eq!(RTreeConfig::for_page(4096, 2).max_entries, 204);
        assert_eq!(RTreeConfig::for_page(4096, 5).max_entries, 93);
    }

    #[test]
    fn tuple_path_navigates_to_tuple() {
        let disk = DiskSim::with_defaults();
        let pts = random_points(300, 2, 2);
        let t = RTree::bulk_load(&disk, pts.clone(), RTreeConfig::small(4));
        for (tid, point) in &pts {
            let path = t.tuple_path(*tid).unwrap();
            // Walk the path through children; the final component is the slot.
            let mut cur = t.root();
            for &p in &path[..path.len() - 1] {
                cur = t.children(cur)[p as usize];
            }
            let entries = t.leaf_entries(cur);
            let (found, pnt) = &entries[*path.last().unwrap() as usize];
            assert_eq!(found, tid);
            assert_eq!(pnt, point);
        }
    }

    #[test]
    fn insert_without_split_updates_only_new_tuple() {
        let disk = DiskSim::with_defaults();
        // Room in the leaves: fanout 8, 4 points.
        let pts = random_points(4, 2, 3);
        let mut t = RTree::bulk_load(&disk, pts, RTreeConfig::small(8));
        let ups = t.insert(&disk, 100, vec![0.5, 0.5]);
        check_invariants(&t);
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].tid, 100);
        assert!(ups[0].old_path.is_none());
        assert!(ups[0].new_path.is_some());
    }

    #[test]
    fn insert_with_split_reports_moved_tuples() {
        let disk = DiskSim::with_defaults();
        let pts = random_points(4, 2, 4);
        // Full packing (fill = 1.0) so the next insert must split.
        let cfg = RTreeConfig { max_entries: 4, min_entries: 1, bulk_fill: 1.0 };
        let mut t = RTree::bulk_load(&disk, pts, cfg);
        // 5th point into a full leaf forces a split.
        let ups = t.insert(&disk, 50, vec![0.9, 0.9]);
        check_invariants(&t);
        assert!(ups.len() > 1, "split must move at least one tuple");
        // All updates must reflect current reality.
        for u in &ups {
            assert_eq!(t.tuple_path(u.tid), u.new_path);
        }
    }

    #[test]
    fn incremental_inserts_match_full_rebuild_paths() {
        // Apply update sets to a shadow map and compare with fresh paths.
        let disk = DiskSim::with_defaults();
        let pts = random_points(64, 2, 5);
        let mut t = RTree::bulk_load(&disk, pts, RTreeConfig::small(4));
        let mut shadow: HashMap<Tid, Vec<u16>> = t.tuple_paths().into_iter().collect();
        let mut rng = StdRng::seed_from_u64(99);
        for i in 0..64u32 {
            let tid = 1000 + i;
            let p = vec![rng.gen(), rng.gen()];
            for u in t.insert(&disk, tid, p) {
                match &u.new_path {
                    Some(np) => {
                        shadow.insert(u.tid, np.clone());
                    }
                    None => {
                        shadow.remove(&u.tid);
                    }
                }
            }
            check_invariants(&t);
        }
        let truth: HashMap<Tid, Vec<u16>> = t.tuple_paths().into_iter().collect();
        assert_eq!(shadow, truth, "update sets must reconstruct the exact paths");
    }

    #[test]
    fn delete_removes_and_reports() {
        let disk = DiskSim::with_defaults();
        let pts = random_points(40, 2, 6);
        let mut t = RTree::bulk_load(&disk, pts, RTreeConfig::small(4));
        let ups = t.delete(&disk, 7);
        check_invariants(&t);
        assert!(t.tuple_path(7).is_none());
        assert_eq!(ups[0].tid, 7);
        assert!(ups[0].new_path.is_none());
        // Remaining paths reported correctly.
        for u in &ups[1..] {
            assert_eq!(t.tuple_path(u.tid), u.new_path);
        }
    }

    #[test]
    fn deep_delete_chain_stays_consistent() {
        let disk = DiskSim::with_defaults();
        let pts = random_points(128, 2, 7);
        let mut t = RTree::bulk_load(&disk, pts, RTreeConfig::small(4));
        for tid in 0..100u32 {
            t.delete(&disk, tid);
            check_invariants(&t);
        }
        assert_eq!(t.tid_leaf.len(), 28);
    }

    #[test]
    fn three_dimensional_points_work() {
        let disk = DiskSim::with_defaults();
        let pts = random_points(200, 3, 8);
        let t = RTree::bulk_load(&disk, pts, RTreeConfig::small(6));
        check_invariants(&t);
        assert_eq!(t.dims(), 3);
        assert_eq!(t.region(t.root()).dims(), 3);
    }

    #[test]
    fn node_count_and_height_reasonable() {
        let disk = DiskSim::with_defaults();
        let pts = random_points(1000, 2, 9);
        let t = RTree::bulk_load(&disk, pts, RTreeConfig::small(10));
        // Fill 0.7 -> chunks of 7: 1000/7 = 143 leaves, /7 = 21, /7 = 3,
        // /7 = 1 -> height 4.
        assert_eq!(t.height(), 4);
        assert!(t.node_count() >= 143);
    }
}
