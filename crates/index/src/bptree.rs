//! A paged B+-tree over a single numeric attribute.
//!
//! Used (a) by the index-merge framework of Chapter 5 as the per-attribute
//! hierarchical index, and (b) by the Boolean-first baseline as the
//! non-clustered index on each selection dimension. Keys are `f64`; u32
//! categorical values embed exactly.
//!
//! The tree is bulk-loaded bottom-up (sort + pack), which is also how the
//! construction-time experiments of Figure 4.8 build their B-trees. Every
//! node owns a simulated page; traversals charge reads against [`DiskSim`].

use rcube_func::Rect;
use rcube_storage::{DiskSim, PageId};
use rcube_table::Tid;

use crate::{HierIndex, NodeHandle};

/// Node fanout for a 4 KB page with 20-byte entries — the "204" the thesis
/// quotes for B-tree nodes.
pub const DEFAULT_FANOUT: usize = 204;

#[derive(Debug)]
enum NodeKind {
    /// Child node ids.
    Internal(Vec<u32>),
    /// `(key, tid)` entries sorted by key.
    Leaf(Vec<(f64, Tid)>),
}

#[derive(Debug)]
struct Node {
    min: f64,
    max: f64,
    kind: NodeKind,
    parent: Option<u32>,
    page: PageId,
}

/// A bulk-loaded B+-tree.
#[derive(Debug)]
pub struct BPlusTree {
    nodes: Vec<Node>,
    root: u32,
    height: usize,
    fanout: usize,
}

impl BPlusTree {
    /// Bulk-loads from `(key, tid)` pairs with the default fanout.
    pub fn bulk_load(disk: &DiskSim, entries: Vec<(f64, Tid)>) -> Self {
        Self::bulk_load_with_fanout(disk, entries, DEFAULT_FANOUT)
    }

    /// Bulk-loads with an explicit fanout (node-size sweeps, Figure 5.19).
    pub fn bulk_load_with_fanout(
        disk: &DiskSim,
        mut entries: Vec<(f64, Tid)>,
        fanout: usize,
    ) -> Self {
        assert!(fanout >= 2, "B+-tree fanout must be at least 2");
        assert!(!entries.is_empty(), "cannot bulk-load an empty B+-tree");
        entries.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        let mut nodes: Vec<Node> = Vec::new();
        // Build leaf level.
        let mut level: Vec<u32> = Vec::new();
        for chunk in entries.chunks(fanout) {
            let id = nodes.len() as u32;
            let page = disk.alloc_page();
            disk.write(page);
            nodes.push(Node {
                min: chunk.first().unwrap().0,
                max: chunk.last().unwrap().0,
                kind: NodeKind::Leaf(chunk.to_vec()),
                parent: None,
                page,
            });
            level.push(id);
        }
        let mut height = 1;
        // Build internal levels until a single root remains.
        while level.len() > 1 {
            let mut next: Vec<u32> = Vec::new();
            for chunk in level.chunks(fanout) {
                let id = nodes.len() as u32;
                let page = disk.alloc_page();
                disk.write(page);
                let min = nodes[chunk[0] as usize].min;
                let max = nodes[*chunk.last().unwrap() as usize].max;
                for &c in chunk {
                    nodes[c as usize].parent = Some(id);
                }
                nodes.push(Node {
                    min,
                    max,
                    kind: NodeKind::Internal(chunk.to_vec()),
                    parent: None,
                    page,
                });
                next.push(id);
            }
            level = next;
            height += 1;
        }
        Self { nodes, root: level[0], height, fanout }
    }

    /// Bulk-loads over a relation column.
    pub fn over_column(disk: &DiskSim, column: &[f64]) -> Self {
        let entries = column.iter().enumerate().map(|(i, &v)| (v, i as Tid)).collect();
        Self::bulk_load(disk, entries)
    }

    /// All tids with `key == value`, charging traversal I/O.
    pub fn lookup(&self, disk: &DiskSim, value: f64) -> Vec<Tid> {
        self.range(disk, value, value)
    }

    /// All tids with `lo ≤ key ≤ hi`, charging traversal I/O.
    pub fn range(&self, disk: &DiskSim, lo: f64, hi: f64) -> Vec<Tid> {
        let mut out = Vec::new();
        self.range_rec(disk, self.root, lo, hi, &mut out);
        out
    }

    fn range_rec(&self, disk: &DiskSim, node: u32, lo: f64, hi: f64, out: &mut Vec<Tid>) {
        let n = &self.nodes[node as usize];
        if n.max < lo || n.min > hi {
            return;
        }
        disk.read(n.page);
        match &n.kind {
            NodeKind::Leaf(entries) => {
                for &(k, tid) in entries {
                    if k >= lo && k <= hi {
                        out.push(tid);
                    }
                }
            }
            NodeKind::Internal(children) => {
                for &c in children {
                    self.range_rec(disk, c, lo, hi, out);
                }
            }
        }
    }

    /// Per-tuple paths `⟨p0, …, p_{d−1}⟩` (leaf-slot position excluded),
    /// used to compute join-signatures (Section 5.3.2).
    pub fn tuple_paths(&self) -> Vec<(Tid, Vec<u16>)> {
        let mut out = Vec::new();
        let mut path = Vec::new();
        self.collect_paths(self.root, &mut path, &mut out);
        out
    }

    fn collect_paths(&self, node: u32, path: &mut Vec<u16>, out: &mut Vec<(Tid, Vec<u16>)>) {
        match &self.nodes[node as usize].kind {
            NodeKind::Leaf(entries) => {
                for &(_, tid) in entries {
                    out.push((tid, path.clone()));
                }
            }
            NodeKind::Internal(children) => {
                for (i, &c) in children.iter().enumerate() {
                    path.push(i as u16);
                    self.collect_paths(c, path, out);
                    path.pop();
                }
            }
        }
    }

    /// Total bytes across all node pages (materialized-size experiments):
    /// 20 bytes per leaf entry / child pointer, matching the fanout math.
    pub fn byte_size(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Leaf(e) => e.len() * 20,
                NodeKind::Internal(c) => c.len() * 20,
            })
            .sum()
    }
}

impl HierIndex for BPlusTree {
    fn dims(&self) -> usize {
        1
    }

    fn root(&self) -> NodeHandle {
        NodeHandle(self.root)
    }

    fn is_leaf(&self, n: NodeHandle) -> bool {
        matches!(self.nodes[n.0 as usize].kind, NodeKind::Leaf(_))
    }

    fn region(&self, n: NodeHandle) -> Rect {
        let node = &self.nodes[n.0 as usize];
        Rect::new(vec![node.min], vec![node.max])
    }

    fn children(&self, n: NodeHandle) -> Vec<NodeHandle> {
        match &self.nodes[n.0 as usize].kind {
            NodeKind::Internal(c) => c.iter().map(|&i| NodeHandle(i)).collect(),
            NodeKind::Leaf(_) => Vec::new(),
        }
    }

    fn leaf_entries(&self, n: NodeHandle) -> Vec<(Tid, Vec<f64>)> {
        match &self.nodes[n.0 as usize].kind {
            NodeKind::Leaf(entries) => entries.iter().map(|&(k, t)| (t, vec![k])).collect(),
            NodeKind::Internal(_) => Vec::new(),
        }
    }

    fn read_node(&self, disk: &DiskSim, n: NodeHandle) {
        disk.read(self.nodes[n.0 as usize].page);
    }

    fn node_path(&self, n: NodeHandle) -> Vec<u16> {
        let mut path = Vec::new();
        let mut cur = n.0;
        while let Some(parent) = self.nodes[cur as usize].parent {
            let pos = match &self.nodes[parent as usize].kind {
                NodeKind::Internal(c) => c.iter().position(|&x| x == cur).unwrap(),
                NodeKind::Leaf(_) => unreachable!("leaf cannot be a parent"),
            };
            path.push(pos as u16);
            cur = parent;
        }
        path.reverse();
        path
    }

    fn height(&self) -> usize {
        self.height
    }

    fn max_fanout(&self) -> usize {
        self.fanout
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with(n: usize, fanout: usize) -> (DiskSim, BPlusTree) {
        let disk = DiskSim::with_defaults();
        let entries: Vec<(f64, Tid)> = (0..n).map(|i| (i as f64, i as Tid)).collect();
        let t = BPlusTree::bulk_load_with_fanout(&disk, entries, fanout);
        (disk, t)
    }

    #[test]
    fn range_returns_exact_matches() {
        let (disk, t) = tree_with(100, 4);
        let mut got = t.range(&disk, 10.0, 20.0);
        got.sort_unstable();
        let want: Vec<Tid> = (10..=20).collect();
        assert_eq!(got, want);
        assert_eq!(t.lookup(&disk, 55.0), vec![55]);
        assert!(t.range(&disk, 200.0, 300.0).is_empty());
    }

    #[test]
    fn duplicates_are_all_returned() {
        let disk = DiskSim::with_defaults();
        let entries = vec![(1.0, 0), (1.0, 1), (1.0, 2), (2.0, 3)];
        let t = BPlusTree::bulk_load_with_fanout(&disk, entries, 2);
        let mut got = t.lookup(&disk, 1.0);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn height_grows_logarithmically() {
        let (_, t2) = tree_with(5, 4);
        assert_eq!(t2.height(), 2); // 1 internal + 1 leaf level
        let (_, t3) = tree_with(64, 4);
        assert_eq!(t3.height(), 3);
        let (_, t1) = tree_with(3, 4);
        assert_eq!(t1.height(), 1); // single leaf is the root
    }

    #[test]
    fn hier_index_regions_nest() {
        let (_, t) = tree_with(64, 4);
        let root = t.root();
        assert!(!t.is_leaf(root));
        let rr = t.region(root);
        for c in t.children(root) {
            let cr = t.region(c);
            assert!(rr.covers(&cr));
            for g in t.children(c) {
                assert!(cr.covers(&t.region(g)));
            }
        }
    }

    #[test]
    fn traversal_charges_io() {
        let (disk, t) = tree_with(1000, 8);
        disk.reset_stats();
        disk.clear_buffer();
        t.range(&disk, 0.0, 0.0);
        let s = disk.stats().snapshot();
        // Root-to-leaf path: height nodes.
        assert_eq!(s.logical_reads as usize, t.height());
    }

    #[test]
    fn paths_round_trip_via_children() {
        let (_, t) = tree_with(64, 4);
        // Follow every leaf's path from the root and confirm it lands there.
        for leaf in (0..t.node_count() as u32).map(NodeHandle).filter(|&n| t.is_leaf(n)) {
            let path = t.node_path(leaf);
            let mut cur = t.root();
            for &p in &path {
                cur = t.children(cur)[p as usize];
            }
            assert_eq!(cur, leaf);
        }
    }

    #[test]
    fn tuple_paths_cover_every_tid() {
        let (_, t) = tree_with(100, 4);
        let paths = t.tuple_paths();
        assert_eq!(paths.len(), 100);
        let mut tids: Vec<Tid> = paths.iter().map(|&(t, _)| t).collect();
        tids.sort_unstable();
        assert_eq!(tids, (0..100).collect::<Vec<_>>());
        // Each path has height-1 components.
        assert!(paths.iter().all(|(_, p)| p.len() == t.height() - 1));
    }

    #[test]
    fn leaf_entries_expose_values() {
        let (_, t) = tree_with(10, 4);
        let mut all: Vec<(Tid, Vec<f64>)> = Vec::new();
        for n in (0..t.node_count() as u32).map(NodeHandle).filter(|&n| t.is_leaf(n)) {
            all.extend(t.leaf_entries(n));
        }
        all.sort_by_key(|&(t, _)| t);
        assert_eq!(all.len(), 10);
        assert_eq!(all[3].1, vec![3.0]);
    }
}
