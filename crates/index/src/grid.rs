//! Equi-depth grid partition with pseudo blocks (Section 3.2).
//!
//! Each ranking dimension is cut into `b = (T/P)^(1/R)` equi-depth bins;
//! their cross product forms the *base blocks* (block dimension `B`). For a
//! cuboid with selection cardinalities `c1…cs`, base blocks are coarsened by
//! the *scale factor* `sf = ⌊(Π cj)^(1/s)⌋` into *pseudo blocks* so that one
//! cuboid cell again fills a physical page (Section 3.2.3, Example 4).
//!
//! Neighborhood search (Lemma 1) needs block adjacency and per-block
//! regions; both come from the bin boundaries kept as meta information.

use rcube_func::Rect;
use rcube_storage::{ByteReader, ByteWriter, StorageError};
use rcube_table::{Relation, Tid};

/// Block identifier within a [`GridPartition`] (row-major over bins).
pub type Bid = u32;

/// The equi-depth grid partition over a relation's ranking dimensions.
#[derive(Debug, Clone)]
pub struct GridPartition {
    /// Bin boundaries per dimension: `bins + 1` ascending edges covering
    /// `[0, 1]` (the meta information of Table 3.5).
    boundaries: Vec<Vec<f64>>,
    /// Bins per dimension (`b`).
    bins: usize,
    /// Ranking dimensions covered, in relation order.
    dims: Vec<usize>,
    /// tid → bid.
    tuple_bid: Vec<Bid>,
    /// bid → tids (base block contents).
    blocks: Vec<Vec<Tid>>,
}

impl GridPartition {
    /// Partitions `rel`'s ranking dimensions `dims` (all when empty) into
    /// equi-depth blocks of expected size `block_size` (`P`).
    pub fn build(rel: &Relation, dims: &[usize], block_size: usize) -> Self {
        let dims: Vec<usize> =
            if dims.is_empty() { (0..rel.schema().num_ranking()).collect() } else { dims.to_vec() };
        let r = dims.len();
        let t = rel.len().max(1);
        let bins =
            ((t as f64 / block_size.max(1) as f64).powf(1.0 / r as f64).ceil() as usize).max(1);

        // Equi-depth boundaries: empirical quantiles per dimension.
        let mut boundaries = Vec::with_capacity(r);
        for &d in &dims {
            let mut col: Vec<f64> = rel.ranking_column(d).to_vec();
            col.sort_unstable_by(f64::total_cmp);
            let mut edges = Vec::with_capacity(bins + 1);
            edges.push(0.0_f64.min(*col.first().unwrap_or(&0.0)));
            for b in 1..bins {
                let idx = (b * col.len()) / bins;
                edges.push(col[idx.min(col.len() - 1)]);
            }
            edges.push(1.0_f64.max(*col.last().unwrap_or(&1.0)));
            // Enforce strict monotonicity where duplicates collapse bins.
            for i in 1..edges.len() {
                if edges[i] <= edges[i - 1] {
                    edges[i] = edges[i - 1] + f64::EPSILON * (i as f64 + 1.0);
                }
            }
            boundaries.push(edges);
        }

        let mut part = Self {
            boundaries,
            bins,
            dims,
            tuple_bid: Vec::with_capacity(rel.len()),
            blocks: vec![Vec::new(); bins.pow(r as u32)],
        };
        for tid in rel.tids() {
            let p = rel.ranking_point_proj(tid, &part.dims);
            let bid = part.locate(&p);
            part.tuple_bid.push(bid);
            part.blocks[bid as usize].push(tid);
        }
        part
    }

    /// Bins per dimension (`b`).
    pub fn bins_per_dim(&self) -> usize {
        self.bins
    }

    /// Ranking dimensions covered.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of base blocks (`b^R`).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Bin boundaries for dimension index `i` (position within `dims`).
    pub fn boundaries(&self, i: usize) -> &[f64] {
        &self.boundaries[i]
    }

    /// The base block of tuple `tid`.
    pub fn bid_of(&self, tid: Tid) -> Bid {
        self.tuple_bid[tid as usize]
    }

    /// Tids inside base block `bid`.
    pub fn block_tids(&self, bid: Bid) -> &[Tid] {
        &self.blocks[bid as usize]
    }

    /// Base block containing `point` (projected coordinates).
    pub fn locate(&self, point: &[f64]) -> Bid {
        let mut bid = 0usize;
        for (i, &v) in point.iter().enumerate() {
            bid = bid * self.bins + self.bin_of(i, v);
        }
        bid as Bid
    }

    fn bin_of(&self, dim_i: usize, v: f64) -> usize {
        let edges = &self.boundaries[dim_i];
        // partition_point: first edge > v, minus one; clamp into range.
        let idx = edges.partition_point(|&e| e <= v);
        idx.saturating_sub(1).min(self.bins - 1)
    }

    /// Row-major coordinates of a block.
    pub fn bid_coords(&self, bid: Bid) -> Vec<usize> {
        let r = self.dims.len();
        let mut c = vec![0usize; r];
        let mut rest = bid as usize;
        for i in (0..r).rev() {
            c[i] = rest % self.bins;
            rest /= self.bins;
        }
        c
    }

    /// Block id from coordinates.
    pub fn coords_bid(&self, coords: &[usize]) -> Bid {
        let mut bid = 0usize;
        for &c in coords {
            bid = bid * self.bins + c;
        }
        bid as Bid
    }

    /// Geometric region of base block `bid` over the partition dimensions.
    pub fn block_rect(&self, bid: Bid) -> Rect {
        let coords = self.bid_coords(bid);
        let lo = coords.iter().enumerate().map(|(i, &c)| self.boundaries[i][c]).collect();
        let hi = coords.iter().enumerate().map(|(i, &c)| self.boundaries[i][c + 1]).collect();
        Rect::new(lo, hi)
    }

    /// Axis-neighbours of `bid` (±1 per dimension) — the `neighbor(b, c)`
    /// relation of Lemma 1.
    pub fn neighbors(&self, bid: Bid) -> Vec<Bid> {
        let coords = self.bid_coords(bid);
        let mut out = Vec::with_capacity(2 * coords.len());
        for i in 0..coords.len() {
            if coords[i] > 0 {
                let mut c = coords.clone();
                c[i] -= 1;
                out.push(self.coords_bid(&c));
            }
            if coords[i] + 1 < self.bins {
                let mut c = coords.clone();
                c[i] += 1;
                out.push(self.coords_bid(&c));
            }
        }
        out
    }

    /// Scale factor for a cuboid over selection cardinalities `cards`
    /// (Section 3.2.3): `sf = ⌊(Π cj)^(1/s)⌋`, at least 1.
    pub fn scale_factor(cards: &[u32]) -> usize {
        if cards.is_empty() {
            return 1;
        }
        let prod: f64 = cards.iter().map(|&c| c as f64).product();
        // Nudge before flooring: powf(1/s) of an exact power must not land
        // a hair under the integer (e.g. 20^(1/1) = 19.999…).
        ((prod.powf(1.0 / cards.len() as f64) + 1e-9).floor() as usize).max(1)
    }

    /// Pseudo-block id of a base block under scale factor `sf` (merging
    /// every `sf` consecutive bins per dimension).
    pub fn pid_of(&self, bid: Bid, sf: usize) -> u32 {
        let coords = self.bid_coords(bid);
        let pbins = self.bins.div_ceil(sf);
        let mut pid = 0usize;
        for &c in &coords {
            pid = pid * pbins + c / sf;
        }
        pid as u32
    }

    /// Number of pseudo blocks under scale factor `sf`.
    pub fn num_pseudo_blocks(&self, sf: usize) -> usize {
        self.bins.div_ceil(sf).pow(self.dims.len() as u32)
    }

    /// Reassembles a partition from serialized parts ([`Self::to_bytes`]'s
    /// counterpart building blocks). `tuple_bid` is rebuilt by inverting
    /// `blocks`, so the parts stay minimal.
    pub fn from_parts(
        boundaries: Vec<Vec<f64>>,
        bins: usize,
        dims: Vec<usize>,
        blocks: Vec<Vec<Tid>>,
    ) -> Result<Self, StorageError> {
        if boundaries.len() != dims.len() {
            return Err(StorageError::Malformed("grid boundaries/dims arity mismatch"));
        }
        let expect_blocks = dims
            .len()
            .try_into()
            .ok()
            .and_then(|r| bins.checked_pow(r))
            .ok_or(StorageError::Malformed("grid bins^dims overflows"))?;
        if blocks.len() != expect_blocks {
            return Err(StorageError::Malformed("grid block count mismatch"));
        }
        if boundaries.iter().any(|e| e.len() != bins + 1) {
            return Err(StorageError::Malformed("grid boundary edge count mismatch"));
        }
        let total: usize = blocks.iter().map(|b| b.len()).sum();
        let mut tuple_bid = vec![0 as Bid; total];
        for (bid, tids) in blocks.iter().enumerate() {
            for &tid in tids {
                let slot = tuple_bid
                    .get_mut(tid as usize)
                    .ok_or(StorageError::Malformed("grid block tid out of range"))?;
                *slot = bid as Bid;
            }
        }
        Ok(Self { boundaries, bins, dims, tuple_bid, blocks })
    }

    /// Serializes the partition's meta information + block table (cube
    /// persistence). The inverse is [`Self::from_bytes`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.bins as u64);
        w.put_u64(self.dims.len() as u64);
        for &d in &self.dims {
            w.put_u64(d as u64);
        }
        for edges in &self.boundaries {
            w.put_u64(edges.len() as u64);
            for &e in edges {
                w.put_f64(e);
            }
        }
        w.put_u64(self.blocks.len() as u64);
        for tids in &self.blocks {
            w.put_u64(tids.len() as u64);
            for &t in tids {
                w.put_u32(t);
            }
        }
        w.into_bytes()
    }

    /// Deserializes a partition written by [`Self::to_bytes`]; every read
    /// is bounds-checked so a garbled blob fails typed, not by panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StorageError> {
        const LIMIT: usize = 1 << 30;
        let mut r = ByteReader::new(bytes);
        let bins = r.count(LIMIT)?;
        let ndims = r.count(64)?;
        let mut dims = Vec::with_capacity(ndims);
        for _ in 0..ndims {
            dims.push(r.count(LIMIT)?);
        }
        let mut boundaries = Vec::with_capacity(ndims);
        for _ in 0..ndims {
            let edges = r.count(LIMIT)?;
            let mut v = Vec::with_capacity(edges);
            for _ in 0..edges {
                v.push(r.f64()?);
            }
            boundaries.push(v);
        }
        let nblocks = r.count(LIMIT)?;
        let mut blocks = Vec::with_capacity(nblocks);
        for _ in 0..nblocks {
            let n = r.count(LIMIT)?;
            let mut tids = Vec::with_capacity(n);
            for _ in 0..n {
                tids.push(r.u32()?);
            }
            blocks.push(tids);
        }
        Self::from_parts(boundaries, bins, dims, blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcube_table::gen::SyntheticSpec;
    use rcube_table::{RelationBuilder, Schema};

    fn thesis_example() -> Relation {
        // Table 3.1 extended with enough tuples to be partitionable.
        let schema = Schema::synthetic(2, 2, 2);
        let mut b = RelationBuilder::new(schema);
        b.push(&[0, 0], &[0.05, 0.05]);
        b.push(&[0, 1], &[0.65, 0.70]);
        b.push(&[0, 0], &[0.05, 0.25]);
        b.push(&[0, 0], &[0.35, 0.15]);
        b.finish()
    }

    #[test]
    fn every_tuple_lands_in_its_block() {
        let rel = SyntheticSpec { tuples: 2000, ..Default::default() }.generate();
        let g = GridPartition::build(&rel, &[], 100);
        for tid in rel.tids() {
            let bid = g.bid_of(tid);
            let rect = g.block_rect(bid);
            let p = rel.ranking_point(tid);
            assert!(rect.contains(&p), "tuple {tid} at {p:?} not in block rect {rect:?}");
            assert!(g.block_tids(bid).contains(&tid));
        }
    }

    #[test]
    fn equi_depth_blocks_balanced() {
        let rel = SyntheticSpec { tuples: 10_000, ..Default::default() }.generate();
        let g = GridPartition::build(&rel, &[], 250);
        // b = ceil(sqrt(40)) = 7 bins per dim, 49 blocks.
        assert_eq!(g.bins_per_dim(), 7);
        let sizes: Vec<usize> = (0..g.num_blocks()).map(|b| g.block_tids(b as Bid).len()).collect();
        let avg = 10_000.0 / sizes.len() as f64;
        let max = *sizes.iter().max().unwrap() as f64;
        assert!(max < avg * 2.0, "equi-depth should balance: max {max}, avg {avg}");
    }

    #[test]
    fn coords_round_trip() {
        let rel = SyntheticSpec { tuples: 1000, ..Default::default() }.generate();
        let g = GridPartition::build(&rel, &[], 50);
        for bid in 0..g.num_blocks() as Bid {
            assert_eq!(g.coords_bid(&g.bid_coords(bid)), bid);
        }
    }

    #[test]
    fn neighbors_are_adjacent() {
        let rel = SyntheticSpec { tuples: 1000, ..Default::default() }.generate();
        let g = GridPartition::build(&rel, &[], 50);
        let bins = g.bins_per_dim();
        let mid = g.coords_bid(&[bins / 2, bins / 2]);
        let n = g.neighbors(mid);
        assert_eq!(n.len(), 4);
        for nb in n {
            let a = g.bid_coords(mid);
            let b = g.bid_coords(nb);
            let dist: usize = a.iter().zip(&b).map(|(x, y)| x.abs_diff(*y)).sum();
            assert_eq!(dist, 1);
        }
        // Corner block has only R neighbours.
        assert_eq!(g.neighbors(g.coords_bid(&[0, 0])).len(), 2);
    }

    #[test]
    fn scale_factor_matches_example_4() {
        // Cardinalities 2 and 2 -> sf = floor(sqrt(4)) = 2 (Example 4).
        assert_eq!(GridPartition::scale_factor(&[2, 2]), 2);
        assert_eq!(GridPartition::scale_factor(&[20]), 20);
        assert_eq!(GridPartition::scale_factor(&[]), 1);
        assert_eq!(GridPartition::scale_factor(&[20, 20, 20]), 20);
    }

    #[test]
    fn pseudo_blocks_group_base_blocks() {
        let rel = thesis_example();
        let g = GridPartition::build(&rel, &[], 1);
        let sf = 2;
        // Pseudo blocks must form a coarser, consistent mapping.
        let pbins = g.bins_per_dim().div_ceil(sf);
        for bid in 0..g.num_blocks() as Bid {
            let pid = g.pid_of(bid, sf);
            let c = g.bid_coords(bid);
            let expect = (c[0] / sf) * pbins + c[1] / sf;
            assert_eq!(pid as usize, expect);
        }
        assert_eq!(g.num_pseudo_blocks(sf), pbins * pbins);
    }

    #[test]
    fn locate_handles_out_of_range_values() {
        let rel = thesis_example();
        let g = GridPartition::build(&rel, &[], 1);
        // Values at/over the domain edge clamp into valid bins.
        let bid = g.locate(&[1.0, 1.0]);
        assert!((bid as usize) < g.num_blocks());
        let bid = g.locate(&[0.0, 0.0]);
        assert!((bid as usize) < g.num_blocks());
    }

    #[test]
    fn serialization_round_trips() {
        let rel = SyntheticSpec { tuples: 1500, ..Default::default() }.generate();
        let g = GridPartition::build(&rel, &[], 80);
        let back = GridPartition::from_bytes(&g.to_bytes()).expect("round trip");
        assert_eq!(back.bins_per_dim(), g.bins_per_dim());
        assert_eq!(back.dims(), g.dims());
        assert_eq!(back.num_blocks(), g.num_blocks());
        for tid in rel.tids() {
            assert_eq!(back.bid_of(tid), g.bid_of(tid));
        }
        for bid in 0..g.num_blocks() as Bid {
            assert_eq!(back.block_tids(bid), g.block_tids(bid));
            let (a, b) = (back.block_rect(bid), g.block_rect(bid));
            for d in 0..g.dims().len() {
                assert_eq!(a.lo(d), b.lo(d));
                assert_eq!(a.hi(d), b.hi(d));
            }
        }
    }

    #[test]
    fn truncated_serialization_fails_typed() {
        let rel = thesis_example();
        let g = GridPartition::build(&rel, &[], 1);
        let bytes = g.to_bytes();
        assert!(GridPartition::from_bytes(&bytes[..bytes.len() / 2]).is_err());
        assert!(GridPartition::from_bytes(&[]).is_err());
    }

    #[test]
    fn projected_dims_partition() {
        let rel = SyntheticSpec { tuples: 500, ranking_dims: 4, ..Default::default() }.generate();
        let g = GridPartition::build(&rel, &[1, 3], 50);
        assert_eq!(g.dims(), &[1, 3]);
        for tid in rel.tids() {
            let p = rel.ranking_point_proj(tid, &[1, 3]);
            assert_eq!(g.locate(&p), g.bid_of(tid));
        }
    }
}
